// Package serve is the resident OCQA engine behind cmd/ocqad: it keeps a
// database, its violations, the conflict partition, and the factored
// repair semantics live in memory, answers queries from snapshots that
// never block, and absorbs fact insertions and retractions with work
// proportional to the delta — not the database.
//
// # Key pieces
//
//   - Server: the engine. A coordinator goroutine applies ingested
//     batches, coalescing everything queued behind the batch in hand into
//     one publication; queries read the current Snapshot through an
//     atomic pointer.
//   - Snapshot: one immutable serving state (database, violations,
//     partition, factored semantics). Readers may hold one across
//     ingests; superseded snapshots stay fully queryable.
//   - Op / Ingest: the write path. Each batch runs the fused pipeline
//     relation.Database.Clone (O(delta) copy-on-write) →
//     constraint.UpdateViolationsDelta (semi-naive violation maintenance,
//     one call per run of same-kind operations) → one batched
//     abc.Partition.Update (violation deltas net by ID, the touched
//     region re-partitions once per publication);
//     the batch's fresh islands then hash by content across
//     Options.Shards resident writer shards (core.BuildScope
//     explorations, one goroutine per shard), and a publication barrier
//     reassembles the factored semantics, carrying every untouched
//     component's semantics verbatim.
//   - The op log (Options.LogPath): an append-only record of each
//     publication's applied operations, replayed on startup so a
//     restarted server rebuilds the exact pre-shutdown snapshot — same
//     version, same stats — instead of serving the stale base corpus.
//   - Handler: the HTTP/JSON surface (/healthz, /v1/stats, /v1/ingest,
//     /v1/query, /v1/fact); every response carries the snapshot version
//     it was answered from.
//
// # Invariants
//
//   - Served answers are bit-identical to computing core.ComputeFactored
//     from scratch on the post-delta database, for every Workers and
//     Shards setting and every coalescing pattern: component reuse is
//     exact (a component whose facts and violations are untouched has
//     the same local semantics), explorations are pure functions of the
//     island's facts, and the exact rational arithmetic is
//     order-independent.
//   - Batches are atomic: a reader sees either none or all of a batch,
//     and the Snapshot's database, violations, partition, and semantics
//     are always mutually consistent.
//   - The structural semantics cache (core.SemanticsCache) is shared
//     across all deltas of a Server, so recomputed components isomorphic
//     to anything previously explored cost a renaming, not a DAG
//     exploration. Σ must therefore stay fixed for the Server's lifetime
//     (it does: Server has no way to change it). Snapshot and payload
//     identity is binary end to end: cache keys are the packed canonical
//     fact-id encoding (relation.AppendIDKey) and islands route to writer
//     shards by content hash — the human-readable Database.Key appears
//     only in the HTTP JSON presentation layer.
//   - Non-atomic queries that overflow the exact enumeration budget
//     degrade to the (ε, δ) sampling estimator instead of failing; the
//     response's exact flag reports which route answered.
//
// # Neighbors
//
// Below: internal/core (factored semantics and delta recomputation),
// internal/abc (resident partition), internal/constraint (violation
// maintenance), internal/relation (copy-on-write databases),
// internal/parse (the HTTP text syntax). Above: cmd/ocqad, the CLI
// binary that wires a corpus into a listening server.
package serve
