package core

import (
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"repro/internal/abc"
	"repro/internal/constraint"
	"repro/internal/fo"
	"repro/internal/intern"
	"repro/internal/logic"
	"repro/internal/markov"
	"repro/internal/prob"
	"repro/internal/relation"
	"repro/internal/repair"
)

// This file implements the "localization of repairs" optimization sketched
// in Section 6 of the paper (after Eiter et al.): for EGD and denial
// constraints — where every chain is deletion-only and violations never
// span conflict components — the repairing process factorizes: the
// connected components of the conflict hypergraph repair independently and
// the repair distribution of the whole database is the product of the
// per-component distributions over the untouched facts.
//
// Factorization additionally requires the chain generator to be *local*:
// the relative probabilities it assigns to operations fixing one component
// must not depend on the state of other components. The uniform generator
// and the trust generator are local (their weights are per-conflict
// constants); the preference generator of Example 4 is not (its weights
// count facts across the whole database), and using it here would silently
// change the semantics, so ComputeFactored requires the caller to assert
// locality via the Local marker interface.
//
// On top of locality the engine layers two compounding optimizations:
//
//   - Parallelism: components repair independently, so their exact
//     explorations run on a worker pool (opt.Workers goroutines, inner DAG
//     workers capped to one while several components are in flight).
//     Components are formed and merged in deterministic order, so the
//     result is bit-identical for every worker count.
//
//   - Structural memoization: when the generator's weights are invariant
//     under renaming of constants (StructuralGenerator) and Σ mentions no
//     constants, two components that are isomorphic up to constant
//     renaming have isomorphic local semantics. Each component is
//     canonicalized by a first-occurrence renaming over its sorted fact
//     list; the packed canonical fact ids key a semantics cache, so N
//     isomorphic islands cost one DAG exploration plus N cheap renamings
//     (materialized lazily — atomic-query marginals read the shared
//     canonical semantics directly and never materialize at all).

// LocalGenerator marks generators whose per-component transition weights
// are independent of the rest of the database, licensing factorization.
type LocalGenerator interface {
	markov.Generator
	// LocalWeights documents (and asserts) locality; implementations
	// simply return true.
	LocalWeights() bool
}

// StructuralGenerator marks local generators whose weights are invariant
// under injective renaming of constants: renaming the constants of a
// component permutes its repairs without changing any probability. Uniform
// and UniformDeletions qualify (their weights count extensions, never
// inspect constants); Trust and Preference do not (their weights depend on
// the identity of the facts involved) and must not implement the marker.
// Structural generators opt a ComputeFactored call into the
// isomorphism-keyed semantics cache, provided Σ mentions no constants
// (a constraint constant would survive renaming and break invariance).
type StructuralGenerator interface {
	LocalGenerator
	// StructuralWeights documents (and asserts) renaming-invariance;
	// implementations simply return true.
	StructuralWeights() bool
}

// ErrNotFactorable is returned when the instance or generator does not
// support component-wise factorization.
var ErrNotFactorable = errors.New("core: instance/generator does not factorize across conflict components")

// ErrEnumerationBudget is returned by CP and OCA when the product of
// per-component repair counts exceeds maxEnumeratedRepairs. Atomic queries
// never hit it (they route through FactProbability); for the rest,
// EstimateCP and CPOrEstimate trade exactness for sampling.
var ErrEnumerationBudget = errors.New("core: factored repair enumeration exceeds the budget")

// Component is one conflict component together with its exact local
// semantics. Components obtained from the structural cache hold a shared
// canonical semantics and materialize their renamed copy lazily on first
// Semantics call; fact marginals read the canonical side directly.
type Component struct {
	// Facts are the component's facts, sorted (each fact belongs to
	// exactly one component).
	Facts []relation.Fact

	// canon is the semantics of the canonicalized component, shared by
	// every component with the same cache key; nil when the component was
	// computed directly (cache disabled, non-structural generator).
	canon *Semantics
	// canonFacts and inv carry the canonicalization computed when the
	// component was built (canonFacts[i] is the image of Facts[i], inv the
	// canonical→original constant table), so per-query marginals and the
	// lazy Semantics materialization never re-run canonicalize. Set only
	// alongside canon.
	canonFacts []relation.Fact
	inv        []intern.Sym

	semOnce sync.Once
	sem     *Semantics

	// weights caches the local repair probabilities in repair order for
	// SampleRepair, which draws from them on every call.
	wOnce   sync.Once
	weights []*big.Rat
}

// Semantics returns the component's exact local semantics, materializing
// the constant-renamed copy of the shared canonical semantics on first use
// for cache-served components. The result is a pure function of
// Component.Facts — independent of worker scheduling and of which
// isomorphic component populated the cache.
func (c *Component) Semantics() *Semantics {
	c.semOnce.Do(func() {
		if c.sem == nil {
			ren := make(map[intern.Sym]intern.Sym, len(c.inv))
			for i, orig := range c.inv {
				ren[canonSym(i)] = orig
			}
			c.sem = renameSemantics(c.canon, ren)
		}
	})
	return c.sem
}

// repairWeights returns the cached probability weights of the local
// repairs, aligned with Semantics().Repairs.
func (c *Component) repairWeights() []*big.Rat {
	c.wOnce.Do(func() {
		repairs := c.Semantics().Repairs
		c.weights = make([]*big.Rat, len(repairs))
		for i, r := range repairs {
			c.weights[i] = r.P
		}
	})
	return c.weights
}

// NumRepairs returns the number of distinct local repairs without
// materializing cached semantics.
func (c *Component) NumRepairs() int {
	if c.canon != nil {
		return len(c.canon.Repairs)
	}
	return len(c.sem.Repairs)
}

// marginal returns the probability that the fact (which must belong to the
// component) survives in a local repair, conditioned on success. For
// cache-served components the fact is mapped through the canonical
// renaming and the marginal is read off the shared canonical semantics —
// renaming is an isomorphism of the local chain, so the values coincide.
func (c *Component) marginal(fact relation.Fact) *big.Rat {
	sem := c.sem
	if c.canon != nil {
		for i, cf := range c.Facts {
			if cf == fact {
				fact = c.canonFacts[i]
				break
			}
		}
		sem = c.canon
	}
	// Repair masses are summed with the small-rational fast path; the
	// canonical big.Rat is materialized once for the final division.
	var acc prob.Rat
	for _, r := range sem.Repairs {
		if r.DB.Contains(fact) {
			acc.AddBig(r.P)
		}
	}
	p := acc.Big()
	if sem.SuccessP.Sign() != 0 {
		p.Quo(p, sem.SuccessP)
	}
	return p
}

// Factored is the factorized exact semantics: the untouched core plus one
// independent Semantics per conflict component. The full repair
// distribution is the product distribution.
type Factored struct {
	initial *relation.Database
	sigma   *constraint.Set
	inst    *repair.Instance // set by ComputeFactored; rebuilt on demand otherwise
	gen     markov.Generator
	part    *abc.Partition
	// Untouched holds the facts in no violation; they survive every
	// deletion-only repair.
	Untouched *relation.Database
	// Components lists the conflict components in deterministic order
	// (sorted by smallest fact), aligned with Partition().Islands().
	Components []*Component
	// CacheHits and CacheMisses count the structural-cache outcomes among
	// the components this call explored: misses are the distinct canonical
	// component shapes explored for the first time (in this call, for a
	// persistent FactoredOptions.Cache), hits the components served by
	// renaming an already explored shape. Both are zero when the cache did
	// not apply (non-structural generator, constants in Σ, or
	// FactoredOptions.NoCache).
	CacheHits, CacheMisses int
	// Reused counts the components carried over verbatim from the previous
	// Factored by ComputeFactoredDelta — their conflict component was not
	// touched by the delta, so the resident semantics is reused without any
	// cache traffic. Zero for from-scratch builds; when the structural cache
	// applies, Reused + CacheHits + CacheMisses == len(Components).
	Reused int
}

// Partition returns the resident conflict partition the semantics is
// aligned with; Components[i] covers Partition().Islands()[i].
func (f *Factored) Partition() *abc.Partition { return f.part }

// SemanticsCache is a persistent structural semantics cache: canonical
// component shapes mapped to their explored local semantics. A zero of it
// is created per call when FactoredOptions.Cache is nil; a long-lived
// server passes one explicitly so isomorphic components pay a single DAG
// exploration across deltas, not per build. A cache is valid only for a
// fixed (Σ, generator, exploration options) configuration — entries are
// keyed by component shape alone — and is safe for concurrent use.
type SemanticsCache struct {
	mu      sync.Mutex
	calls   uint64
	entries map[string]*cacheEntry
}

type cacheEntry struct {
	once sync.Once
	call uint64 // the cache call that created the entry, for hit accounting
	sem  *Semantics
	err  error
}

// NewSemanticsCache returns an empty cache.
func NewSemanticsCache() *SemanticsCache {
	return &SemanticsCache{entries: map[string]*cacheEntry{}}
}

// Len reports the number of distinct component shapes cached.
func (c *SemanticsCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// begin opens an accounting scope: entries created under the returned call
// number are this build's misses, everything older a hit.
func (c *SemanticsCache) begin() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	return c.calls
}

func (c *SemanticsCache) entry(key string, call uint64) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{call: call}
		c.entries[key] = e
	}
	return e
}

// FactoredOptions tunes ComputeFactoredOpts beyond the exploration options.
type FactoredOptions struct {
	// NoCache disables the structural semantics cache even for structural
	// generators; every component is explored directly. Benchmarks use it
	// to isolate the cache's contribution.
	NoCache bool
	// Cache, when set, is the persistent structural cache to consult and
	// populate instead of a per-call one, keeping isomorphic shapes warm
	// across builds. Ignored under NoCache or a non-structural generator.
	Cache *SemanticsCache
}

// FactDelta is one applied database change: a fact inserted or deleted.
type FactDelta struct {
	Fact   relation.Fact
	Insert bool
}

// FactoredDelta describes how a database evolved from a previously computed
// Factored, letting ComputeFactoredDelta rebuild the semantics with work
// proportional to the touched conflict region.
type FactoredDelta struct {
	// Prev is the factored semantics of the pre-delta database. Nil means
	// build from scratch (only Part is consulted).
	Prev *Factored
	// Part is the post-delta conflict partition, derived from Prev's by
	// abc.Partition.Update along the applied operations. Islands carried
	// from Prev's partition hold their Component as Payload and are reused
	// verbatim; islands with a nil Payload are explored. The partition must
	// come from the same lineage as Prev — and from builds with the same
	// generator and exploration options — or the reused semantics would be
	// silently wrong.
	Part *abc.Partition
	// Removed accumulates the islands dissolved by the Updates between
	// Prev's partition and Part; their facts return to the untouched core
	// when they are still present and conflict-free.
	Removed []*abc.Island
	// Ops are the applied changes, in order (as reported changed by
	// Database.Insert/Delete).
	Ops []FactDelta
}

// ComputeFactored builds the factorized semantics. It requires a
// constraint set without TGDs (so chains are deletion-only and components
// never interact) and a LocalGenerator. Per-component explorations run on
// opt.Workers goroutines (≤ 0 means GOMAXPROCS), and structural generators
// share one exploration across isomorphic components; the result is
// bit-identical for every worker count and cache state.
func ComputeFactored(inst *repair.Instance, g LocalGenerator, opt markov.ExploreOptions) (*Factored, error) {
	return ComputeFactoredOpts(inst, g, opt, FactoredOptions{})
}

// ComputeFactoredOpts is ComputeFactored with explicit factored options.
func ComputeFactoredOpts(inst *repair.Instance, g LocalGenerator, opt markov.ExploreOptions, fopt FactoredOptions) (*Factored, error) {
	// The root state caches V(D,Σ); reuse it instead of re-running the
	// homomorphism search, and form components with the id-keyed
	// union-find of the abc package.
	part := abc.NewPartition(inst.Root().Violations())
	return buildFactored(inst.Initial(), inst.Sigma(), inst, g, opt, fopt, part, nil)
}

// ComputeFactoredDelta rebuilds the factorized semantics of db after a
// delta: components untouched by the delta (d.Part islands carried from
// d.Prev) are reused verbatim, and only the fresh islands are explored —
// against the persistent structural cache when one is passed. db is the
// post-delta database; with d.Prev nil this is a from-scratch build over
// d.Part. The result is a pure function of (db, Σ, generator, options),
// bit-identical to a from-scratch ComputeFactored on db for every worker
// count, reuse pattern, and cache state.
func ComputeFactoredDelta(db *relation.Database, sigma *constraint.Set, g LocalGenerator, opt markov.ExploreOptions, fopt FactoredOptions, d FactoredDelta) (*Factored, error) {
	var delta *FactoredDelta
	if d.Prev != nil {
		delta = &d
	}
	return buildFactored(db, sigma, nil, g, opt, fopt, d.Part, delta)
}

// untouchedCompactLimit bounds the copy-on-write delta an incrementally
// maintained untouched core may accumulate before it is folded into a fresh
// snapshot; see relation.Database.Compact.
const untouchedCompactLimit = 4096

func buildFactored(db *relation.Database, sigma *constraint.Set, inst *repair.Instance, g LocalGenerator, opt markov.ExploreOptions, fopt FactoredOptions, part *abc.Partition, delta *FactoredDelta) (*Factored, error) {
	for _, c := range sigma.All() {
		if c.Kind() == constraint.TGD {
			return nil, fmt.Errorf("%w: TGD %s allows insertions that may couple components", ErrNotFactorable, c)
		}
	}
	if !g.LocalWeights() {
		return nil, fmt.Errorf("%w: generator %s is not local", ErrNotFactorable, g.Name())
	}

	islands := part.Islands()
	components := make([]*Component, len(islands))
	var fresh []int
	reused := 0
	for i, isl := range islands {
		if comp, ok := isl.Payload.(*Component); ok && delta != nil {
			components[i] = comp
			reused++
		} else {
			fresh = append(fresh, i)
		}
	}

	var untouched *relation.Database
	if delta == nil {
		// The untouched core is assembled into a fresh database (near-linear
		// with copy-on-write auto-sealing) rather than cloning the initial
		// database and deleting every conflicted fact, which is quadratic at
		// scale.
		untouched = relation.NewDatabase()
		for _, f := range db.Facts() {
			if part.IslandOf(f) == nil {
				untouched.Insert(f)
			}
		}
		untouched.Seal()
	} else {
		// Incremental maintenance, O(delta + touched region).
		freshIslands := make([]*abc.Island, len(fresh))
		for fi, i := range fresh {
			freshIslands[fi] = islands[i]
		}
		untouched = UpdateUntouched(delta.Prev.Untouched, db, part, delta.Ops, delta.Removed, freshIslands)
	}

	// Cap the inner DAG workers while several components are in flight:
	// the component pool already saturates the CPUs, and the DAG result is
	// bit-identical for every inner worker count.
	inner := opt
	if len(fresh) > 1 {
		inner.Workers = 1
	}

	scope := NewBuildScope(sigma, g, inner, fopt)
	explored := make([]Explored, len(fresh))
	errs := make([]error, len(fresh))
	work := func(fi int) {
		i := fresh[fi]
		e, err := scope.Explore(islands[i])
		if err != nil {
			errs[fi] = err
			return
		}
		explored[fi] = e
		components[i] = e.Comp
		// Resident partitions carry the component to later delta builds;
		// islands are private to this build until the caller publishes, so
		// the write is unsynchronized but unshared.
		islands[i].Payload = e.Comp
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(fresh) {
		workers = len(fresh)
	}
	if workers <= 1 {
		for fi := range fresh {
			work(fi)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for fi := range next {
					work(fi)
				}
			}()
		}
		for fi := range fresh {
			next <- fi
		}
		close(next)
		wg.Wait()
	}
	// Errors are reported in deterministic component order, independent of
	// which worker failed first.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	out := &Factored{initial: db, sigma: sigma, inst: inst, gen: g, part: part, Untouched: untouched, Components: components, Reused: reused}
	// Deterministic accounting regardless of worker scheduling: explored is
	// in island order, so the first fresh component of each shape is the
	// miss candidate and every other one a hit.
	out.CacheHits, out.CacheMisses = scope.Accounting(explored)
	return out, nil
}

// computeComponent explores one component in isolation. vios, when
// non-nil, is the component's violation set V(facts,Σ), seeded into the
// instance so the exploration skips the from-scratch homomorphism search —
// the island that induced the component already carries exactly those
// violations.
func computeComponent(sigma *constraint.Set, g markov.Generator, opt markov.ExploreOptions, facts []relation.Fact, vios *constraint.Violations) (*Semantics, error) {
	sub := relation.FromFacts(facts...)
	subInst, err := repair.NewInstance(sub, sigma)
	if err != nil {
		return nil, err
	}
	if vios != nil {
		subInst.SeedRootViolations(vios)
	}
	return Compute(subInst, g, opt)
}

// renameViolations maps an island's violations into the canonical constant
// space of its cache key. On the structural path Σ mentions no constants
// and the first-occurrence renaming is injective, so each image is a
// violation of the canonical instance and together they are exactly
// V(canon,Σ): every isomorphic island renames to the identical set, making
// the seed independent of which component populates the cache entry.
func renameViolations(vios []constraint.Violation, ren map[intern.Sym]intern.Sym) *constraint.Violations {
	out := make([]constraint.Violation, len(vios))
	for i, v := range vios {
		h := make(logic.Subst, len(v.H))
		for x, a := range v.H {
			if c, ok := ren[a]; ok {
				a = c
			}
			h[x] = a
		}
		out[i] = constraint.NewViolation(v.Constraint, h)
	}
	return constraint.ViolationsOf(out)
}

// canonSyms is the process-wide table of canonical constants ⟨0⟩, ⟨1⟩, …
// substituted for a component's constants in first-occurrence order.
var (
	canonMu   sync.Mutex
	canonSyms []intern.Sym
)

func canonSym(i int) intern.Sym {
	canonMu.Lock()
	for len(canonSyms) <= i {
		canonSyms = append(canonSyms, intern.S(fmt.Sprintf("⟨%d⟩", len(canonSyms))))
	}
	s := canonSyms[i]
	canonMu.Unlock()
	return s
}

// canonicalize renames the constants of a sorted fact list to canonical
// constants in first-occurrence order. It returns the canonical facts
// (aligned by index with the input), the packed cache key (the canonical
// fact ids — equal keys imply the fact lists are isomorphic up to constant
// renaming, since both first-occurrence renamings are injective and
// compose into an isomorphism), the inverse renaming (canonical index →
// original constant), and the forward renaming map (original constant →
// canonical constant).
func canonicalize(facts []relation.Fact) (canon []relation.Fact, key string, inv []intern.Sym, ren map[intern.Sym]intern.Sym) {
	ren = map[intern.Sym]intern.Sym{}
	canon = make([]relation.Fact, len(facts))
	ids := make([]uint32, len(facts))
	for i, f := range facts {
		orig := f.Args()
		args := make([]intern.Sym, len(orig))
		for j, a := range orig {
			c, ok := ren[a]
			if !ok {
				c = canonSym(len(inv))
				ren[a] = c
				inv = append(inv, a)
			}
			args[j] = c
		}
		cf := relation.FactOf(f.Pred(), args)
		canon[i] = cf
		ids[i] = cf.ID()
	}
	// Pack with the shared id-key encoding (relation.AppendIDKey), over the
	// canonical ids in input (sorted-fact) order.
	key = string(relation.AppendIDKey(make([]byte, 0, 4*len(ids)), ids))
	return canon, key, inv, ren
}

// renameSemantics deep-copies a semantics with every repair fact's
// constants mapped through ren. Probabilities, sequence counts, and
// per-length counts are invariant under the renaming; repairs are re-sorted
// by the renamed database keys so the copy is in canonical repair order.
func renameSemantics(sem *Semantics, ren map[intern.Sym]intern.Sym) *Semantics {
	out := &Semantics{
		Mode:             sem.Mode,
		SuccessP:         new(big.Rat).Set(sem.SuccessP),
		FailP:            new(big.Rat).Set(sem.FailP),
		AbsorbingStates:  sem.AbsorbingStates,
		FailingStates:    sem.FailingStates,
		TotalSequences:   new(big.Int).Set(sem.TotalSequences),
		FailingSequences: new(big.Int).Set(sem.FailingSequences),
	}
	if sem.SequencesByLength != nil {
		out.SequencesByLength = make([]*big.Int, len(sem.SequencesByLength))
		for i, cnt := range sem.SequencesByLength {
			out.SequencesByLength[i] = new(big.Int).Set(cnt)
		}
	}
	out.Repairs = make([]Repair, len(sem.Repairs))
	keys := make([]string, len(sem.Repairs))
	for i, r := range sem.Repairs {
		facts := r.DB.Facts()
		renamed := make([]relation.Fact, len(facts))
		for j, f := range facts {
			renamed[j] = renameFact(f, ren)
		}
		db := relation.FromFacts(renamed...)
		out.Repairs[i] = Repair{
			DB:        db,
			P:         new(big.Rat).Set(r.P),
			Sequences: r.Sequences,
			SeqCount:  new(big.Int).Set(r.SeqCount),
		}
		keys[i] = db.Key()
	}
	sort.Sort(&repairsByKey{keys: keys, repairs: out.Repairs})
	return out
}

// renameFact maps a fact's arguments through ren (identity for arguments
// outside the map).
func renameFact(f relation.Fact, ren map[intern.Sym]intern.Sym) relation.Fact {
	orig := f.Args()
	args := make([]intern.Sym, len(orig))
	for i, a := range orig {
		if r, ok := ren[a]; ok {
			args[i] = r
		} else {
			args[i] = a
		}
	}
	return relation.FactOf(f.Pred(), args)
}

// NumRepairs returns the number of distinct operational repairs of the full
// database: the product of the per-component repair counts.
func (f *Factored) NumRepairs() *big.Int {
	n := big.NewInt(1)
	for _, c := range f.Components {
		n.Mul(n, big.NewInt(int64(c.NumRepairs())))
	}
	return n
}

// FactProbability returns the exact probability that the fact appears in an
// operational repair: 1 for untouched facts, the component-local marginal
// for conflicted facts, and 0 for facts absent from the database. The
// component is found through the partition's resident fact→island index,
// so the lookup is O(|component repairs|) regardless of the number of
// components. This answers atomic queries exactly in time polynomial in
// the component sizes even when the full repair count is astronomical.
func (f *Factored) FactProbability(fact relation.Fact) *big.Rat {
	if isl := f.part.IslandOf(fact); isl != nil {
		return isl.Payload.(*Component).marginal(fact)
	}
	if f.Untouched.Contains(fact) {
		return prob.One()
	}
	return prob.Zero()
}

// maxEnumeratedRepairs bounds full repair enumeration in CP and OCA.
const maxEnumeratedRepairs = 1 << 20

// atomicQueryFact resolves queries of the form Q(x̄) := R(t̄) — a single
// positive atom whose arguments are constants or output variables, with
// every output variable occurring in the atom — to the single ground fact
// the tuple selects. For such queries Q holds in a repair iff the fact is
// present, so CP(t̄) is exactly the fact's marginal. ok reports whether the
// query has that shape; zero reports that the tuple selects a fact that
// occurs in no database (never interned, or absent), so CP is exactly 0.
func (f *Factored) atomicQueryFact(q *fo.Query, tuple []string) (fact relation.Fact, zero, ok bool) {
	atom, isAtom := q.F.(fo.Atom)
	if !isAtom {
		return relation.Fact{}, false, false
	}
	if len(tuple) != len(q.Out) {
		return relation.Fact{}, true, true // Holds rejects the tuple everywhere
	}
	outIdx := map[intern.Sym]int{}
	for i, t := range q.Out {
		outIdx[t.Sym()] = i
	}
	used := make([]bool, len(q.Out))
	args := make([]intern.Sym, len(atom.A.Args))
	for i, t := range atom.A.Args {
		if !t.IsVar() {
			args[i] = t.Sym()
			continue
		}
		j, isOut := outIdx[t.Sym()]
		if !isOut {
			return relation.Fact{}, false, false
		}
		used[j] = true
		sym, interned := intern.Lookup(tuple[j])
		if !interned {
			return relation.Fact{}, true, true // constant occurs in no database
		}
		args[i] = sym
	}
	for _, u := range used {
		if !u {
			// An output variable outside the atom makes Holds depend on
			// active-domain membership, not on a single fact.
			return relation.Fact{}, false, false
		}
	}
	fct, exists := relation.LookupFact(atom.A.Pred, args)
	if !exists {
		return relation.Fact{}, true, true
	}
	return fct, false, true
}

// CP computes the exact conditional probability of a tuple. Atomic queries
// (a single positive atom over constants and output variables) are routed
// through FactProbability and never enumerate, whatever the scale. Other
// queries enumerate the product distribution; when the product exceeds
// maxEnumeratedRepairs CP returns ErrEnumerationBudget instead of running
// forever — CPOrEstimate falls back to sampling automatically.
func (f *Factored) CP(q *fo.Query, tuple []string) (*big.Rat, error) {
	if fact, zero, ok := f.atomicQueryFact(q, tuple); ok {
		if zero {
			return prob.Zero(), nil
		}
		return f.FactProbability(fact), nil
	}
	total := f.NumRepairs()
	if !total.IsInt64() || total.Int64() > maxEnumeratedRepairs {
		return nil, fmt.Errorf("%w: %s repairs > %d; FactProbability answers atomic queries exactly, EstimateCP samples the rest",
			ErrEnumerationBudget, total.String(), maxEnumeratedRepairs)
	}
	num := prob.Zero()
	den := prob.Zero()
	db := f.Untouched.Clone()
	var rec func(i int, p *big.Rat)
	rec = func(i int, p *big.Rat) {
		if i == len(f.Components) {
			den.Add(den, p)
			if q.Holds(db, tuple) {
				num.Add(num, p)
			}
			return
		}
		for _, r := range f.Components[i].Semantics().Repairs {
			for _, fact := range r.DB.Facts() {
				db.Insert(fact)
			}
			rec(i+1, new(big.Rat).Mul(p, r.P))
			for _, fact := range r.DB.Facts() {
				db.Delete(fact)
			}
		}
	}
	rec(0, prob.One())
	if den.Sign() == 0 {
		return prob.Zero(), nil
	}
	return num.Quo(num, den), nil
}

// CPOrEstimate computes CP exactly when feasible — always for atomic
// queries, and for arbitrary queries while the product distribution fits
// the enumeration budget — and otherwise falls back to the (ε, δ) sampling
// estimate. exact reports which route produced the value.
func (f *Factored) CPOrEstimate(q *fo.Query, tuple []string, eps, delta float64, seed int64) (p *big.Rat, exact bool, err error) {
	p, err = f.CP(q, tuple)
	if err == nil {
		return p, true, nil
	}
	if !errors.Is(err, ErrEnumerationBudget) {
		return nil, false, err
	}
	est, err := f.EstimateCP(q, tuple, eps, delta, seed)
	if err != nil {
		return nil, false, err
	}
	return new(big.Rat).SetFloat64(est), false, nil
}

// OCA returns the operational consistent answers over the factored
// semantics. Atomic queries scan the initial database once and read each
// matching fact's exact marginal off its component — polynomial at any
// scale. Other queries enumerate the product distribution under the same
// budget as CP.
func (f *Factored) OCA(q *fo.Query) (*AnswerSet, error) {
	if as, ok := f.atomicOCA(q); ok {
		return as, nil
	}
	total := f.NumRepairs()
	if !total.IsInt64() || total.Int64() > maxEnumeratedRepairs {
		return nil, fmt.Errorf("%w: %s repairs > %d; only atomic queries have factored OCA at this scale",
			ErrEnumerationBudget, total.String(), maxEnumeratedRepairs)
	}
	num := map[string]*Answer{}
	den := prob.Zero()
	db := f.Untouched.Clone()
	var rec func(i int, p *big.Rat)
	rec = func(i int, p *big.Rat) {
		if i == len(f.Components) {
			den.Add(den, p)
			for _, tuple := range q.Answers(db) {
				k := fo.TupleKey(tuple)
				a, ok := num[k]
				if !ok {
					a = &Answer{Tuple: tuple, P: prob.Zero()}
					num[k] = a
				}
				a.P.Add(a.P, p)
			}
			return
		}
		for _, r := range f.Components[i].Semantics().Repairs {
			for _, fact := range r.DB.Facts() {
				db.Insert(fact)
			}
			rec(i+1, new(big.Rat).Mul(p, r.P))
			for _, fact := range r.DB.Facts() {
				db.Delete(fact)
			}
		}
	}
	rec(0, prob.One())
	out := &AnswerSet{Query: q}
	for _, a := range num {
		if den.Sign() != 0 {
			a.P.Quo(a.P, den)
		} else {
			a.P = prob.Zero()
		}
		if a.P.Sign() > 0 {
			out.Answers = append(out.Answers, *a)
		}
	}
	sortAnswers(out)
	return out, nil
}

// atomicOCA answers an atomic query by a single scan over the initial
// database: each fact matching the atom's pattern yields one candidate
// tuple whose probability is the fact's marginal (the tuple determines the
// fact, so no aggregation is needed).
func (f *Factored) atomicOCA(q *fo.Query) (*AnswerSet, bool) {
	atom, isAtom := q.F.(fo.Atom)
	if !isAtom {
		return nil, false
	}
	outIdx := map[intern.Sym]int{}
	for i, t := range q.Out {
		outIdx[t.Sym()] = i
	}
	used := make([]bool, len(q.Out))
	for _, t := range atom.A.Args {
		if !t.IsVar() {
			continue
		}
		j, isOut := outIdx[t.Sym()]
		if !isOut {
			return nil, false
		}
		used[j] = true
	}
	for _, u := range used {
		if !u {
			return nil, false
		}
	}
	out := &AnswerSet{Query: q}
	db := f.initial
	if !db.Sealed() {
		// A database with a pending delta is single-owner (even reads
		// populate merged per-predicate views), and served snapshots keep
		// theirs unsealed so publication stays O(delta); concurrent readers
		// scan a private O(delta) clone instead.
		db = db.Clone()
	}
	for _, fact := range db.FactsByPred(atom.A.Pred) {
		fargs := fact.Args()
		if len(fargs) != len(atom.A.Args) {
			continue
		}
		binding := make([]intern.Sym, len(q.Out))
		bound := make([]bool, len(q.Out))
		match := true
		for i, t := range atom.A.Args {
			if !t.IsVar() {
				if t.Sym() != fargs[i] {
					match = false
					break
				}
				continue
			}
			j := outIdx[t.Sym()]
			if bound[j] && binding[j] != fargs[i] {
				match = false // repeated variable bound inconsistently
				break
			}
			binding[j], bound[j] = fargs[i], true
		}
		if !match {
			continue
		}
		p := f.FactProbability(fact)
		if p.Sign() <= 0 {
			continue
		}
		tuple := make([]string, len(q.Out))
		for j, sym := range binding {
			tuple[j] = intern.Name(sym)
		}
		out.Answers = append(out.Answers, Answer{Tuple: tuple, P: p})
	}
	sortAnswers(out)
	return out, true
}

// sortAnswers orders an answer set lexicographically by tuple, matching
// Semantics.OCA.
func sortAnswers(as *AnswerSet) {
	sort.Slice(as.Answers, func(i, j int) bool {
		a, b := as.Answers[i].Tuple, as.Answers[j].Tuple
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}

// TotalSequences returns the exact number of complete sequences of the
// full chain M_Σ(D). Probabilities under the sequence-uniform mode do not
// factorize across components (interleavings weigh components by length),
// but the *count* does: every complete sequence is an interleaving of
// per-component complete sequences, so the total is the binomial
// convolution of the per-component length-stratified counts. It requires
// the components to have been explored with
// markov.ExploreOptions.TrackLengths.
func (f *Factored) TotalSequences() (*big.Int, error) {
	// T[m] counts the interleavings of complete sequences of the first i
	// components with total length m.
	T := []*big.Int{big.NewInt(1)}
	for _, c := range f.Components {
		sem := c.canon
		if sem == nil {
			sem = c.sem
		}
		cl := sem.SequencesByLength
		if cl == nil {
			return nil, fmt.Errorf("core: per-length sequence counts unavailable; recompute with markov.ExploreOptions.TrackLengths")
		}
		nt := make([]*big.Int, len(T)+len(cl)-1)
		for i := range nt {
			nt[i] = new(big.Int)
		}
		var binom big.Int
		for m, tm := range T {
			if tm.Sign() == 0 {
				continue
			}
			for l, cnt := range cl {
				if cnt.Sign() == 0 {
					continue
				}
				// The l operations of the new component choose their slots
				// among the m+l positions.
				binom.Binomial(int64(m+l), int64(l))
				term := new(big.Int).Mul(tm, cnt)
				term.Mul(term, &binom)
				nt[m+l].Add(nt[m+l], term)
			}
		}
		T = nt
	}
	total := new(big.Int)
	for _, t := range T {
		total.Add(total, t)
	}
	return total, nil
}

// SampleRepair draws one full repair exactly from the factorized
// distribution: one local repair per component, independently. Unlike a
// chain walk this costs O(|D| + Σ |component repairs|) per draw.
func (f *Factored) SampleRepair(rng *rand.Rand) *relation.Database {
	db := f.Untouched.Clone()
	for _, c := range f.Components {
		repairs := c.Semantics().Repairs
		pick := repairs[prob.Pick(rng, c.repairWeights())]
		for _, fact := range pick.DB.Facts() {
			db.Insert(fact)
		}
	}
	return db
}

// EstimateCP approximates CP(t̄) with the additive (ε, δ) guarantee of
// Theorem 9, drawing exact factored repairs instead of chain walks; each
// sample is orders of magnitude cheaper than a walk on large instances.
func (f *Factored) EstimateCP(q *fo.Query, tuple []string, eps, delta float64, seed int64) (float64, error) {
	n, err := prob.HoeffdingSamples(eps, delta)
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	hits := 0
	for i := 0; i < n; i++ {
		if q.Holds(f.SampleRepair(rng), tuple) {
			hits++
		}
	}
	return float64(hits) / float64(n), nil
}

// Monolithic recomputes the unfactored semantics (for tests and the
// ablation benchmarks).
func (f *Factored) Monolithic(opt markov.ExploreOptions) (*Semantics, error) {
	inst := f.inst
	if inst == nil {
		var err error
		inst, err = repair.NewInstance(f.initial, f.sigma)
		if err != nil {
			return nil, err
		}
	}
	return Compute(inst, f.gen, opt)
}
