// Command ocqa answers a first-order query over an inconsistent database
// under the operational CQA semantics of Calautti, Libkin and Pieris
// (PODS 2018). It computes either the exact operational consistent answers
// (exponential; Theorem 5) or the additive-error approximation of
// Theorem 9.
//
// Usage:
//
//	ocqa -db data.facts -constraints schema.rules -query query.fo \
//	     [-gen uniform|uniform-deletions|preference|trust[:seed]] \
//	     [-mode exact|approx] [-eps 0.1] [-delta 0.1] [-seed 1] [-workers 4]
//
// File arguments also accept "inline:<text>".
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/markov"
	"repro/internal/prob"
	"repro/internal/repair"
	"repro/internal/sampling"
)

func main() {
	var (
		dbPath    = flag.String("db", "", "database file (facts terminated by '.'), or inline:<text>")
		sigmaPath = flag.String("constraints", "", "constraint file (TGDs/EGDs/DCs), or inline:<text>")
		queryPath = flag.String("query", "", "query file (Q(X) := formula), or inline:<text>")
		genName   = flag.String("gen", "uniform", "chain generator: "+cliutil.GeneratorNames())
		mode      = flag.String("mode", "exact", "exact (full chain exploration) or approx (Theorem 9 sampling)")
		eps       = flag.Float64("eps", 0.1, "additive error bound ε (approx mode)")
		delta     = flag.Float64("delta", 0.1, "failure probability δ (approx mode)")
		seed      = flag.Int64("seed", 1, "random seed (approx mode)")
		workers   = flag.Int("workers", 1, "parallel walkers (approx mode)")
		maxStates = flag.Int("max-states", 1_000_000, "exact-mode state budget (0 = unlimited)")
		nulls     = flag.Bool("nulls", false, "repair TGDs with labeled-null insertions (Section 6 extension)")
	)
	flag.Parse()
	if *dbPath == "" || *sigmaPath == "" || *queryPath == "" {
		fmt.Fprintln(os.Stderr, "ocqa: -db, -constraints and -query are required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*dbPath, *sigmaPath, *queryPath, *genName, *mode, *eps, *delta, *seed, *workers, *maxStates, *nulls); err != nil {
		fmt.Fprintln(os.Stderr, "ocqa:", err)
		os.Exit(1)
	}
}

func run(dbPath, sigmaPath, queryPath, genName, mode string, eps, delta float64, seed int64, workers, maxStates int, nulls bool) error {
	d, err := cliutil.LoadDatabase(dbPath)
	if err != nil {
		return err
	}
	sigma, err := cliutil.LoadConstraints(sigmaPath)
	if err != nil {
		return err
	}
	q, err := cliutil.LoadQuery(queryPath)
	if err != nil {
		return err
	}
	gen, err := cliutil.ResolveGenerator(genName, d)
	if err != nil {
		return err
	}
	inst, err := repair.NewInstanceOpts(d, sigma, repair.Options{NullInsertions: nulls})
	if err != nil {
		return err
	}

	fmt.Printf("database: %d facts, %d constraints; consistent: %v\n",
		d.Size(), sigma.Len(), inst.Consistent())
	fmt.Printf("query: %s\ngenerator: %s\n\n", q, gen.Name())

	switch mode {
	case "exact":
		sem, err := core.Compute(inst, gen, markov.ExploreOptions{MaxStates: maxStates})
		if err != nil {
			return err
		}
		fmt.Printf("chain: %d absorbing states (%d failing); success mass %s\n",
			sem.AbsorbingStates, sem.FailingStates, prob.Format(sem.SuccessP))
		fmt.Printf("operational repairs: %d\n\n", len(sem.Repairs))
		fmt.Print(sem.OCA(q))
		return nil

	case "approx":
		est := &sampling.Estimator{Inst: inst, Gen: gen, Seed: seed, Workers: workers}
		run, err := est.EstimateAnswers(q, eps, delta)
		if err != nil {
			return err
		}
		fmt.Printf("samples: n = %d (ε = %g, δ = %g); %d successful, %d failing walks\n\n",
			run.N, eps, delta, run.SuccessfulWalks, run.FailingWalks)
		if len(run.Estimates) == 0 {
			fmt.Println("no tuple was observed in any successful repair")
			return nil
		}
		fmt.Printf("approximate OCA for %s:\n", q)
		for _, e := range run.Estimates {
			fmt.Printf("  (%s) : %.4f  (count %d/%d)\n",
				joinTuple(e.Tuple), e.P, e.Count, run.N)
		}
		if run.FailingWalks > 0 {
			fmt.Println("\nnote: failing walks present; the conditional (ratio) estimates are:")
			for _, e := range run.Estimates {
				fmt.Printf("  (%s) : %.4f\n", joinTuple(e.Tuple), e.Conditional)
			}
		}
		return nil

	default:
		return fmt.Errorf("unknown mode %q (want exact or approx)", mode)
	}
}

func joinTuple(tuple []string) string {
	out := ""
	for i, c := range tuple {
		if i > 0 {
			out += ", "
		}
		out += c
	}
	return out
}
