package core_test

import (
	"math/big"
	"testing"

	"repro/internal/core"
	"repro/internal/generators"
	"repro/internal/markov"
	"repro/internal/repair"
	"repro/internal/workload"
)

// TestSequencesByLength: the per-length sequence histogram maintained under
// ExploreOptions.TrackLengths agrees between the tree and DAG explorers,
// sums to TotalSequences, and matches the hand count for the 3-chain (all 9
// complete sequences delete either one middle fact or two facts).
func TestSequencesByLength(t *testing.T) {
	d, sigma := workload.Chain(workload.ChainConfig{Facts: 3})
	inst := repair.MustInstance(d, sigma)
	opt := markov.ExploreOptions{TrackLengths: true, MaxStates: 100000}

	tree, err := core.ComputeTree(inst, generators.Uniform{}, opt)
	if err != nil {
		t.Fatal(err)
	}
	dag, err := core.ComputeDAG(inst, generators.Uniform{}, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, sem := range []*core.Semantics{tree, dag} {
		if sem.SequencesByLength == nil {
			t.Fatal("TrackLengths set but SequencesByLength is nil")
		}
		sum := new(big.Int)
		for _, c := range sem.SequencesByLength {
			sum.Add(sum, c)
		}
		if sum.Cmp(sem.TotalSequences) != 0 {
			t.Errorf("Σ SequencesByLength = %s, TotalSequences = %s", sum, sem.TotalSequences)
		}
	}
	if len(tree.SequencesByLength) != len(dag.SequencesByLength) {
		t.Fatalf("histogram lengths differ: tree %d vs dag %d",
			len(tree.SequencesByLength), len(dag.SequencesByLength))
	}
	for l := range tree.SequencesByLength {
		if tree.SequencesByLength[l].Cmp(dag.SequencesByLength[l]) != 0 {
			t.Errorf("length %d: tree %s vs dag %s", l,
				tree.SequencesByLength[l], dag.SequencesByLength[l])
		}
	}
	// 3-chain: 3 sequences of length 1 (delete the middle fact, or either
	// violating pair — each leaves a consistent remainder at once) and 6 of
	// length 2 (delete an end fact, then resolve the surviving violation in
	// one of its 3 ways).
	want := map[int]int64{1: 3, 2: 6}
	for l, c := range dag.SequencesByLength {
		if c.Int64() != want[l] {
			t.Errorf("length %d: %s sequences, want %d", l, c, want[l])
		}
	}

	// Untracked runs leave the histogram nil.
	plain, err := core.ComputeDAG(inst, generators.Uniform{}, markov.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.SequencesByLength != nil {
		t.Error("SequencesByLength must be nil without TrackLengths")
	}
}
