package ops

import (
	"testing"

	"repro/internal/relation"
)

func f(pred string, args ...string) relation.Fact { return relation.NewFact(pred, args...) }

func TestOpConstruction(t *testing.T) {
	op := Insert(f("R", "a"), f("R", "a"), f("S", "b"))
	if op.Size() != 2 {
		t.Errorf("duplicates must collapse: size = %d", op.Size())
	}
	if !op.IsInsert() || op.IsDelete() {
		t.Error("Insert must be an insertion")
	}
	del := Delete(f("R", "a"))
	if !del.IsDelete() || del.IsInsert() {
		t.Error("Delete must be a deletion")
	}
}

func TestOpEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty operation must panic")
		}
	}()
	Insert()
}

func TestOpKeyAndEqual(t *testing.T) {
	a := Delete(f("R", "a"), f("R", "b"))
	b := Delete(f("R", "b"), f("R", "a"))
	if a.Key() != b.Key() || !a.Equal(b) {
		t.Error("fact order must not matter")
	}
	c := Insert(f("R", "a"), f("R", "b"))
	if a.Key() == c.Key() || a.Equal(c) {
		t.Error("sign must matter")
	}
	d := Delete(f("R", "a"))
	if a.Equal(d) {
		t.Error("different sizes must differ")
	}
}

func TestOpString(t *testing.T) {
	if got := Delete(f("Pref", "a", "b")).String(); got != "-Pref(a, b)" {
		t.Errorf("String = %q", got)
	}
	if got := Insert(f("R", "b"), f("R", "a")).String(); got != "+{R(a), R(b)}" {
		t.Errorf("String = %q", got)
	}
}

func TestOpApplyInsertDelete(t *testing.T) {
	d := relation.FromFacts(f("R", "a"))
	ins := Insert(f("R", "b"), f("R", "a"))
	out := ins.Apply(d)
	if d.Size() != 1 {
		t.Error("Apply must not mutate the input")
	}
	if out.Size() != 2 || !out.Contains(f("R", "b")) {
		t.Errorf("out = %v", out)
	}
	del := Delete(f("R", "a"), f("R", "zz"))
	out2 := del.Apply(out)
	if out2.Size() != 1 || out2.Contains(f("R", "a")) {
		t.Errorf("out2 = %v", out2)
	}
}

func TestOpDoUndo(t *testing.T) {
	d := relation.FromFacts(f("R", "a"))
	before := d.Key()

	ins := Insert(f("R", "a"), f("R", "b")) // R(a) already present
	changed := ins.Do(d)
	if len(changed) != 1 || !changed[0].Equal(f("R", "b")) {
		t.Errorf("changed = %v, want only R(b)", changed)
	}
	ins.Undo(d, changed)
	if d.Key() != before {
		t.Error("Undo after insert must restore the database")
	}

	del := Delete(f("R", "a"), f("R", "q")) // R(q) absent
	changed = del.Do(d)
	if len(changed) != 1 || !changed[0].Equal(f("R", "a")) {
		t.Errorf("changed = %v, want only R(a)", changed)
	}
	del.Undo(d, changed)
	if d.Key() != before {
		t.Error("Undo after delete must restore the database")
	}
}

func TestOpInBase(t *testing.T) {
	schema := relation.NewSchema()
	if err := schema.Add("R", 1); err != nil {
		t.Fatal(err)
	}
	base := relation.NewBase(schema, []string{"a"})
	if !Insert(f("R", "a")).InBase(base) {
		t.Error("R(a) is in the base")
	}
	if Insert(f("R", "z")).InBase(base) {
		t.Error("R(z) is outside the base")
	}
}

func TestSortOpsDeterministic(t *testing.T) {
	opsList := []Op{Insert(f("R", "b")), Delete(f("R", "a")), Insert(f("R", "a"))}
	SortOps(opsList)
	got := ""
	for _, op := range opsList {
		got += op.String() + ";"
	}
	want := "+R(a);+R(b);-R(a);"
	if got != want {
		t.Errorf("sorted = %q, want %q", got, want)
	}
}
