package repair

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/constraint"
	"repro/internal/logic"
	"repro/internal/relation"
)

// This file holds the representation-equivalence properties for the
// interned / copy-on-write substrate: every state reached through the
// incremental machinery (COW database clones, delta-maintained violation
// sets, id-keyed bookkeeping) must be indistinguishable from a state
// recomputed from scratch with the reference implementations
// (FindViolations, InsertAll/DeleteAll on a fresh database).

// rebuildResult replays the sequence of ops on a fresh copy of the initial
// database without any copy-on-write sharing: every fact set is rebuilt
// from the ground up.
func rebuildResult(inst *Instance, s *State) *relation.Database {
	out := relation.FromFacts(inst.Initial().Facts()...)
	for _, op := range s.Ops() {
		if op.IsInsert() {
			out.InsertAll(op.Facts())
		} else {
			out.DeleteAll(op.Facts())
		}
	}
	return out
}

// TestQuickIncrementalStateMatchesRecompute walks the full tree of random
// mixed instances and, at every state, checks that the COW database and the
// delta-maintained violation set agree exactly with from-scratch
// recomputation — both as interned sets and through the canonical string
// encodings (which are independent of interning order).
func TestQuickIncrementalStateMatchesRecompute(t *testing.T) {
	check := func(seed int64) bool {
		inst := randomMixedInstance(seed)
		ok := true
		count := 0
		Walk(inst, func(s *State) bool {
			count++
			if count > 20000 {
				return false
			}
			fresh := rebuildResult(inst, s)
			if !s.Result().Equal(fresh) {
				t.Logf("seed %d: state %q database diverged from replay", seed, s)
				ok = false
				return false
			}
			if s.Result().Key() != fresh.Key() {
				t.Logf("seed %d: state %q database key diverged", seed, s)
				ok = false
				return false
			}
			wantVio := constraint.FindViolations(fresh, inst.Sigma())
			gotKeys := strings.Join(s.Violations().Keys(), ";")
			wantKeys := strings.Join(wantVio.Keys(), ";")
			if gotKeys != wantKeys {
				t.Logf("seed %d: state %q violations %q, want %q", seed, s, gotKeys, wantKeys)
				ok = false
				return false
			}
			// The id-keyed bookkeeping must match the set difference with
			// the initial database.
			added, removed := s.Result().SymmetricDiff(inst.Initial())
			if len(added) != len(s.added) || len(removed) != len(s.removed) {
				t.Logf("seed %d: state %q bookkeeping added=%d/%d removed=%d/%d",
					seed, s, len(s.added), len(added), len(s.removed), len(removed))
				ok = false
				return false
			}
			for _, f := range added {
				if !s.added.Has(f) {
					ok = false
					return false
				}
			}
			for _, f := range removed {
				if !s.removed.Has(f) {
					ok = false
					return false
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestQuickDomMatchesRecompute: the incrementally maintained active domain
// of every reachable state equals a from-scratch scan.
func TestQuickDomMatchesRecompute(t *testing.T) {
	check := func(seed int64) bool {
		inst := randomMixedInstance(seed)
		ok := true
		count := 0
		Walk(inst, func(s *State) bool {
			count++
			if count > 5000 {
				return false
			}
			got := strings.Join(s.Result().Dom(), ",")
			want := strings.Join(rebuildResult(inst, s).Dom(), ",")
			if got != want {
				t.Logf("seed %d: state %q dom %q, want %q", seed, s, got, want)
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// naiveHomSearch is the from-scratch reference for the indexed search:
// plain backtracking in the given atom order over a full scan of the fact
// list — no indexes, no join planning, no snapshot/delta logic.
func naiveHomSearch(atoms []logic.Atom, facts []relation.Fact, base logic.Subst) []logic.Subst {
	var out []logic.Subst
	var rec func(i int, cur logic.Subst)
	rec = func(i int, cur logic.Subst) {
		if i == len(atoms) {
			out = append(out, cur.Clone())
			return
		}
		a := atoms[i]
		for _, f := range facts {
			if f.Pred() != a.Pred || f.Arity() != len(a.Args) {
				continue
			}
			next := cur.Clone()
			ok := true
			for j, t := range a.Args {
				c := f.Arg(j)
				if t.IsConst() {
					if t.Sym() != c {
						ok = false
						break
					}
					continue
				}
				if !next.Bind(t.Sym(), c) {
					ok = false
					break
				}
			}
			if ok {
				rec(i+1, next)
			}
		}
	}
	rec(0, base.Clone())
	return out
}

// naiveViolationKeys recomputes V(D,Σ) with the naive matcher, straight
// from Definition 2: every body homomorphism is checked against the
// constraint's head, equality, or denial semantics.
func naiveViolationKeys(d *relation.Database, sigma *constraint.Set) string {
	facts := d.Facts()
	seen := map[string]bool{}
	var keys []string
	for _, c := range sigma.All() {
		for _, h := range naiveHomSearch(c.Body(), facts, logic.NewSubst()) {
			violated := false
			switch c.Kind() {
			case constraint.TGD:
				violated = len(naiveHomSearch(c.Head(), facts, h)) == 0
			case constraint.EGD:
				l, r := c.Equality()
				lv, _ := h.Lookup(l.Sym())
				rv, _ := h.Lookup(r.Sym())
				violated = lv != rv
			case constraint.DC:
				violated = true
			}
			if violated {
				if k := constraint.NewViolation(c, h).Key(); !seen[k] {
					seen[k] = true
					keys = append(keys, k)
				}
			}
		}
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

// TestQuickIndexedViolationsMatchNaiveScan: at every state of the walk tree
// — each reached through copy-on-write clones carrying per-walk deltas —
// the indexed FindViolations agrees with the naive unindexed recomputation.
func TestQuickIndexedViolationsMatchNaiveScan(t *testing.T) {
	check := func(seed int64) bool {
		inst := randomMixedInstance(seed)
		ok := true
		count := 0
		Walk(inst, func(s *State) bool {
			count++
			if count > 4000 {
				return false
			}
			got := strings.Join(constraint.FindViolations(s.Result(), inst.Sigma()).Keys(), ";")
			want := naiveViolationKeys(s.Result(), inst.Sigma())
			if got != want {
				t.Logf("seed %d: state %q indexed violations %q, want %q", seed, s, got, want)
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestIndexedViolationsAcrossMutations drives a database through random
// interleavings of inserts, deletes, clones, and explicit seals — so
// violation detection runs against every mix of snapshot index and pending
// delta — and checks FindViolations against the naive scan at every step.
func TestIndexedViolationsAcrossMutations(t *testing.T) {
	x, y, z := v("x"), v("y"), v("z")
	sigma := constraint.NewSet(
		constraint.MustEGD([]logic.Atom{at("R", x, y), at("R", x, z)}, y, z),
		constraint.MustTGD([]logic.Atom{at("R", x, y)}, []logic.Atom{at("S", y)}),
		constraint.MustDC([]logic.Atom{at("U", x), at("S", x)}),
	)
	consts := []string{"a", "b", "c"}
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		randomFact := func() relation.Fact {
			switch rng.Intn(3) {
			case 0:
				return f("R", consts[rng.Intn(3)], consts[rng.Intn(3)])
			case 1:
				return f("S", consts[rng.Intn(3)])
			default:
				return f("U", consts[rng.Intn(3)])
			}
		}
		dbs := []*relation.Database{relation.NewDatabase()}
		for step := 0; step < 150; step++ {
			d := dbs[rng.Intn(len(dbs))]
			switch op := rng.Intn(10); {
			case op < 5:
				d.Insert(randomFact())
			case op < 8:
				d.Delete(randomFact())
			case op < 9:
				if len(dbs) < 4 {
					dbs = append(dbs, d.Clone())
				}
			default:
				d.Seal()
			}
			got := strings.Join(constraint.FindViolations(d, sigma).Keys(), ";")
			if want := naiveViolationKeys(d, sigma); got != want {
				t.Fatalf("seed %d step %d: indexed violations %q, want %q", seed, step, got, want)
			}
		}
	}
}

// TestSurveyInvariantUnderMaterialization: Survey statistics do not depend
// on how the input database was materialized — freshly inserted, cloned,
// explicitly sealed, or round-tripped through a delete/re-insert delta.
func TestSurveyInvariantUnderMaterialization(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		fresh := relation.NewDatabase()
		for i := 0; i < 3+rng.Intn(4); i++ {
			fresh.Insert(f("R", string(rune('a'+rng.Intn(3))), string(rune('a'+rng.Intn(3)))))
		}
		sigma := func() *constraint.Set {
			x, y, z := v("x"), v("y"), v("z")
			return constraint.NewSet(constraint.MustEGD(
				[]logic.Atom{at("R", x, y), at("R", x, z)}, y, z))
		}

		variants := map[string]*relation.Database{}
		variants["fresh"] = fresh

		cloned := fresh.Clone()
		variants["cloned"] = cloned

		sealed := fresh.Clone()
		sealed.Seal()
		variants["sealed"] = sealed

		churned := fresh.Clone()
		churned.Seal()
		for _, fact := range fresh.Facts() {
			churned.Delete(fact)
			churned.Insert(fact)
		}
		variants["churned"] = churned

		var want Stats
		first := true
		for name, db := range variants {
			got := Survey(MustInstance(db, sigma()))
			if first {
				want, first = got, false
				continue
			}
			if got != want {
				t.Errorf("seed %d: Survey over %s db = %+v, want %+v", seed, name, got, want)
			}
		}
	}
}
