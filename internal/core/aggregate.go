package core

import (
	"math/big"
	"sort"

	"repro/internal/fo"
	"repro/internal/prob"
)

// This file adds aggregate answers over the repair distribution — the
// "more expressive languages" direction of Section 6 (after Arenas et al.'s
// scalar aggregation in inconsistent databases): instead of per-tuple
// probabilities, report the distribution and expectation of an aggregate of
// the query answer across operational repairs.

// CountPoint is one point of an answer-cardinality distribution.
type CountPoint struct {
	// Count is |Q(D')| for some repair(s) D'.
	Count int
	// P is the total (conditional) probability of repairs with that count.
	P *big.Rat
}

// CountDistribution is the distribution of |Q(D')| over operational
// repairs, normalized by the success mass.
type CountDistribution struct {
	Points []CountPoint
}

// AnswerCountDistribution computes the distribution of the number of query
// answers across repairs. With no repairs the distribution is empty.
func (s *Semantics) AnswerCountDistribution(q *fo.Query) *CountDistribution {
	if s.SuccessP.Sign() == 0 {
		return &CountDistribution{}
	}
	byCount := map[int]*big.Rat{}
	for _, r := range s.Repairs {
		n := len(q.Answers(r.DB))
		if _, ok := byCount[n]; !ok {
			byCount[n] = prob.Zero()
		}
		byCount[n].Add(byCount[n], r.P)
	}
	out := &CountDistribution{}
	counts := make([]int, 0, len(byCount))
	for n := range byCount {
		counts = append(counts, n)
	}
	sort.Ints(counts)
	for _, n := range counts {
		p := byCount[n]
		p.Quo(p, s.SuccessP)
		out.Points = append(out.Points, CountPoint{Count: n, P: p})
	}
	return out
}

// Expectation returns E[|Q(D')|] under the distribution.
func (d *CountDistribution) Expectation() *big.Rat {
	e := prob.Zero()
	for _, pt := range d.Points {
		term := new(big.Rat).Mul(big.NewRat(int64(pt.Count), 1), pt.P)
		e.Add(e, term)
	}
	return e
}

// Min and Max return the range of answer counts (0, 0 for an empty
// distribution).
func (d *CountDistribution) Min() int {
	if len(d.Points) == 0 {
		return 0
	}
	return d.Points[0].Count
}

// Max returns the largest possible answer count.
func (d *CountDistribution) Max() int {
	if len(d.Points) == 0 {
		return 0
	}
	return d.Points[len(d.Points)-1].Count
}

// PAtLeast returns P(|Q(D')| ≥ k): the probability that the query has at
// least k answers on an operational repair.
func (d *CountDistribution) PAtLeast(k int) *big.Rat {
	p := prob.Zero()
	for _, pt := range d.Points {
		if pt.Count >= k {
			p.Add(p, pt.P)
		}
	}
	return p
}

// ExpectedAnswerCount is shorthand for the expectation of the answer
// cardinality; for a boolean query it equals the probability that the
// query holds on an operational repair.
func (s *Semantics) ExpectedAnswerCount(q *fo.Query) *big.Rat {
	return s.AnswerCountDistribution(q).Expectation()
}
