package logic

import (
	"testing"
	"testing/quick"
)

func TestTermBasics(t *testing.T) {
	c := Const("a")
	v := Var("x")
	if c.IsVar() || !c.IsConst() {
		t.Error("Const must not be a variable")
	}
	if !v.IsVar() || v.IsConst() {
		t.Error("Var must be a variable")
	}
	if c.Name() != "a" || v.Name() != "x" {
		t.Error("names not preserved")
	}
	if Const("x") == Var("x") {
		t.Error("constant and variable with the same name must differ")
	}
	if !Term.Zero(Term{}) {
		t.Error("zero term must report Zero")
	}
	if Const("a").Zero() {
		t.Error("non-empty constant is not zero")
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{Const("a"), "a"},
		{Const("abc_1"), "abc_1"},
		{Var("X"), "X"},
		{Const("X"), `"X"`}, // leading uppercase constant needs quoting
		{Const("has space"), `"has space"`},
		{Const(""), `""`},
		{Const("42"), "42"},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.term, got, c.want)
		}
	}
}

func TestAtomBasics(t *testing.T) {
	a := NewAtom("R", Const("a"), Var("x"), Const("b"))
	if a.Arity() != 3 {
		t.Errorf("arity = %d, want 3", a.Arity())
	}
	if a.IsGround() {
		t.Error("atom with variable must not be ground")
	}
	g := NewAtom("R", Const("a"), Const("b"))
	if !g.IsGround() {
		t.Error("constant-only atom must be ground")
	}
	if got := a.String(); got != "R(a, x, b)" {
		t.Errorf("String() = %q", got)
	}
}

func TestAtomVarsOrder(t *testing.T) {
	a := NewAtom("R", Var("y"), Var("x"), Var("y"))
	vars := a.Vars()
	if len(vars) != 2 || vars[0].Name() != "y" || vars[1].Name() != "x" {
		t.Errorf("Vars() = %v, want [y x] in first-occurrence order", vars)
	}
}

func TestVarsOfAndConstsOf(t *testing.T) {
	atoms := []Atom{
		NewAtom("R", Var("x"), Const("b")),
		NewAtom("S", Const("a"), Var("x"), Var("z")),
	}
	vars := VarsOf(atoms)
	if len(vars) != 2 || vars[0].Name() != "x" || vars[1].Name() != "z" {
		t.Errorf("VarsOf = %v", vars)
	}
	consts := ConstsOf(atoms)
	if len(consts) != 2 || consts[0].Name() != "a" || consts[1].Name() != "b" {
		t.Errorf("ConstsOf = %v (want sorted [a b])", consts)
	}
}

func TestAtomEqual(t *testing.T) {
	a := NewAtom("R", Const("a"), Var("x"))
	if !a.Equal(NewAtom("R", Const("a"), Var("x"))) {
		t.Error("identical atoms must be equal")
	}
	if a.Equal(NewAtom("R", Var("x"), Const("a"))) {
		t.Error("argument order matters")
	}
	if a.Equal(NewAtom("S", Const("a"), Var("x"))) {
		t.Error("predicate matters")
	}
	if a.Equal(NewAtom("R", Const("a"))) {
		t.Error("arity matters")
	}
}

func TestAtomsString(t *testing.T) {
	atoms := []Atom{
		NewAtom("R", Var("x"), Var("y")),
		NewAtom("S", Var("y")),
	}
	if got := AtomsString(atoms); got != "R(x, y), S(y)" {
		t.Errorf("AtomsString = %q", got)
	}
}

// Property: quoting in Term.String keeps distinct constants distinct.
func TestQuotingInjective(t *testing.T) {
	f := func(a, b string) bool {
		if a == b {
			return true
		}
		return Const(a).String() != Const(b).String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
