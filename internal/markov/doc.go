// Package markov implements repairing Markov chains (Definition 5 of the
// paper): tree-shaped Markov chains whose states are repairing sequences,
// whose absorbing states are exactly the complete sequences, and whose
// transition probabilities are supplied by a Generator (the paper's
// repairing Markov chain generator M_Σ).
//
// # Key types
//
//   - Generator: assigns transition probabilities to the valid extensions
//     of a state. Implementations live in internal/generators.
//   - Markovian: the capability interface for memoryless generators —
//     Transitions is a pure function of (s.Result(), exts). Combined with
//     a TGD-free Σ (Collapsible), it licenses collapsing the sequence
//     tree into the DAG of distinct sub-databases.
//   - IntWeighter: the integer-weight fast path; random walks step with a
//     single RNG draw and zero big.Rat work, bit-identical to the exact
//     path.
//   - Explore / ExploreDAG: exact exploration. Explore walks the sequence
//     tree; ExploreDAG (dag.go) merges states by database identity, sweeps
//     size levels in decreasing order (every deletion-only edge shrinks
//     the database, so size classes are a topological order), accumulates
//     exact path mass π and big.Int sequence counts per node, and expands
//     each frontier with a worker pool.
//
// # Two-tier state keys
//
// The engines use a two-tier key scheme. The merge tier is binary: states
// are grouped by the packed sorted-fact-id encoding (Database.IDKey /
// relation.AppendIDKey), and a child's key is derived from its parent's
// cached ids by one binary search plus two packed runs
// (repair.State.AppendChildIDKey) — each level first computes every edge's
// key, then materializes one repair.State per *distinct* child database.
// Packed keys are process-local (they depend on interning order) and never
// leave the process. The presentation tier is the human-readable
// Database.Key(): it appears exactly once per absorbing database, when
// DAGLeaf.Key is emitted, and in everything layered above (reported repair
// order, HTTP JSON). The two keys group states identically — both encode
// exactly the fact set — they only sort differently.
//   - SemanticsMode (mode.go): walk-induced vs sequence-uniform — which
//     distribution over complete sequences the layers above compute.
//   - SequenceDAG (seqdag.go): the counting-to-sampling reduction. A
//     second, upward sweep turns the collapsed DAG into per-node
//     completion counts; count-guided walks then draw complete sequences
//     exactly uniformly, which internal/sampling uses for the uniform
//     semantics.
//
// # Invariants (the determinism contract)
//
//   - Exact arithmetic is rational end to end; hitting distributions sum
//     to exactly 1 or the exploration errors (ErrNotWellDefined). Path
//     mass accumulates through prob.Rat — an int64 fast path that promotes
//     to big.Rat exactly on overflow — and the *big.Rat a consumer sees is
//     bit-identical to all-big.Rat arithmetic (big.Rat is canonical, and
//     exact rational addition is order-insensitive).
//   - ExploreDAG and BuildSequenceDAG produce bit-identical results for
//     every Workers value: levels merge sequentially in sorted-key order,
//     and workers only compute per-node expansions.
//   - Markovian implementations must be safe for concurrent Transitions /
//     IntWeights calls (the worker pool calls them from goroutines).
//   - Collapsing is gated, never assumed: history-dependent generators and
//     TGD constraint sets take the sequence tree (ErrNotCollapsible), and
//     the equivalence suite in internal/core proves the gate is
//     load-bearing.
//
// # Neighbors
//
// Below: internal/repair (states), internal/ops, internal/prob. Above:
// internal/generators (implementations), internal/sampling (walks),
// internal/core (assembles Semantics from explorations).
package markov
