package relation

import (
	"slices"
	"sort"
	"strings"
	"sync"

	"repro/internal/intern"
	"repro/internal/logic"
)

// snapshot is an immutable, fully indexed set of facts shared between
// copy-on-write databases. Once published by Seal it is never mutated, so
// any number of databases (and goroutines) may read it concurrently.
type snapshot struct {
	facts   map[Fact]struct{}
	byPred  map[intern.Sym][]Fact
	idx     map[intern.Sym]*predIndex // secondary argument indexes (index.go)
	domSyms []intern.Sym              // sorted by symbol id
	domCnt  []int32                   // parallel occurrence counts
	size    int

	// sorted caches the canonical fact order, computed once per snapshot
	// and shared by every sealed database over it; Facts on a sealed
	// database copies it instead of re-sorting.
	sortedOnce sync.Once
	sorted     []Fact

	// ids caches the facts' interned ids in ascending id order, computed
	// once per snapshot; AppendFactIDs merges a database's delta against it
	// instead of re-enumerating and re-sorting the whole fact set.
	idsOnce sync.Once
	ids     []uint32
}

// sortedFacts returns the snapshot's facts in canonical order; the shared
// slice must not be modified.
func (s *snapshot) sortedFacts() []Fact {
	s.sortedOnce.Do(func() {
		out := make([]Fact, 0, s.size)
		for _, fs := range s.byPred {
			out = append(out, fs...)
		}
		SortFacts(out)
		s.sorted = out
	})
	return s.sorted
}

// sortedIDs returns the snapshot's fact ids sorted ascending; the shared
// slice must not be modified.
func (s *snapshot) sortedIDs() []uint32 {
	s.idsOnce.Do(func() {
		out := make([]uint32, 0, s.size)
		for f := range s.facts {
			out = append(out, f.id)
		}
		slices.Sort(out)
		s.ids = out
	})
	return s.ids
}

var emptySnapshot = &snapshot{}

func (s *snapshot) domRef(c intern.Sym) int32 {
	lo, hi := 0, len(s.domSyms)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.domSyms[mid] < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.domSyms) && s.domSyms[lo] == c {
		return s.domCnt[lo]
	}
	return 0
}

// FactSet is a fact set kept sorted by interned id: membership is a binary
// search, mutation a memmove, and cloning a single copy. It is the delta
// representation of the copy-on-write Database and the bookkeeping set of
// repair states — such sets stay small (one operation per walk step), so
// this beats hash maps on both allocation count and locality.
type FactSet []Fact

func (s FactSet) search(f Fact) (int, bool) {
	id := f.ID()
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid].ID() < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(s) && s[lo] == f
}

// Has reports membership.
func (s FactSet) Has(f Fact) bool {
	_, ok := s.search(f)
	return ok
}

// Insert adds f, keeping the slice sorted; it reports whether the set
// changed. As with append, the caller must use the returned slice.
func (s FactSet) Insert(f Fact) (FactSet, bool) {
	i, ok := s.search(f)
	if ok {
		return s, false
	}
	s = append(s, Fact{})
	copy(s[i+1:], s[i:])
	s[i] = f
	return s, true
}

// Remove deletes f, reporting whether the set changed.
func (s FactSet) Remove(f Fact) (FactSet, bool) {
	i, ok := s.search(f)
	if !ok {
		return s, false
	}
	copy(s[i:], s[i+1:])
	return s[:len(s)-1], true
}

// Clone returns an independent copy with room for extra insertions.
func (s FactSet) Clone(extra int) FactSet {
	if len(s) == 0 && extra == 0 {
		return nil
	}
	out := make(FactSet, len(s), len(s)+extra)
	copy(out, s)
	return out
}

func (s FactSet) countPred(p intern.Sym) int {
	n := 0
	for _, f := range s {
		if f.Pred() == p {
			n++
		}
	}
	return n
}

// domCounts tracks per-constant occurrence deltas as parallel sorted
// slices.
type domCounts struct {
	syms []intern.Sym
	cnt  []int32
}

func (d *domCounts) adjust(c intern.Sym, by int32) {
	lo, hi := 0, len(d.syms)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if d.syms[mid] < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(d.syms) && d.syms[lo] == c {
		d.cnt[lo] += by
		return
	}
	d.syms = append(d.syms, 0)
	copy(d.syms[lo+1:], d.syms[lo:])
	d.syms[lo] = c
	d.cnt = append(d.cnt, 0)
	copy(d.cnt[lo+1:], d.cnt[lo:])
	d.cnt[lo] = by
}

// mergedView caches the merged per-predicate fact list of a dirty
// predicate; walks touch one or two predicates, so a tiny slice suffices.
type mergedView struct {
	pred  intern.Sym
	facts []Fact
}

// Database is a finite set of facts with per-predicate indexes. It
// implements the fact-source contract of the homomorphism search so that
// joins run directly against it.
//
// A Database is an immutable shared snapshot plus a private delta (facts
// added and removed since the snapshot, kept in small sorted slices).
// Clone copies only the delta, so the child states of a repairing walk
// cost O(|delta|) words instead of O(|D|) map entries. Seal collapses the
// delta into a fresh snapshot; repairing instances seal once so every walk
// starts from an O(1)-cloneable database, and bulk loading auto-seals
// geometrically so construction stays near-linear.
//
// A sealed Database (empty delta) is safe for concurrent readers until the
// next write. A Database with a pending delta is single-owner: even read
// methods may populate internal caches (merged per-predicate views), so it
// must not be shared across goroutines — walkers clone their own.
type Database struct {
	snap    *snapshot
	added   FactSet
	removed FactSet
	merged  []mergedView
	size    int
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{snap: emptySnapshot}
}

// FromFacts builds a database containing the given facts (duplicates are
// collapsed, as databases are sets).
func FromFacts(fs ...Fact) *Database {
	d := NewDatabase()
	for _, f := range fs {
		d.Insert(f)
	}
	return d
}

// Size reports the number of facts.
func (d *Database) Size() int { return d.size }

// Contains reports whether the fact is present.
func (d *Database) Contains(f Fact) bool {
	if len(d.removed) > 0 && d.removed.Has(f) {
		return false
	}
	if len(d.added) > 0 && d.added.Has(f) {
		return true
	}
	_, ok := d.snap.facts[f]
	return ok
}

// ContainsAtom reports whether the ground atom is present as a fact. Atoms
// naming facts that were never interned are absent by construction, so the
// lookup never grows the fact table.
func (d *Database) ContainsAtom(a logic.Atom) bool {
	f, ok := LookupFactFromAtom(a)
	if !ok {
		return false
	}
	return d.Contains(f)
}

func (d *Database) invalidate(f Fact) {
	p := f.Pred()
	for i := range d.merged {
		if d.merged[i].pred == p {
			d.merged[i] = d.merged[len(d.merged)-1]
			d.merged = d.merged[:len(d.merged)-1]
			break
		}
	}
}

// domDelta derives the per-constant occurrence delta from the fact delta;
// deltas are one walk's worth of facts, so this is cheaper to recompute on
// the rare domain query than to maintain on every clone and write.
func (d *Database) domDelta() domCounts {
	var dc domCounts
	for _, f := range d.added {
		for _, c := range f.Args() {
			dc.adjust(c, 1)
		}
	}
	for _, f := range d.removed {
		for _, c := range f.Args() {
			dc.adjust(c, -1)
		}
	}
	return dc
}

// autoSealThreshold keeps bulk loading near-linear: once the delta reaches
// both the floor and half the database size, the delta is folded into a
// fresh snapshot. Walk-sized deltas never reach the floor.
const autoSealFloor = 256

func (d *Database) maybeAutoSeal() {
	if n := len(d.added) + len(d.removed); n >= autoSealFloor && 2*n >= d.size {
		d.Seal()
	}
}

// Insert adds a fact; inserting an existing fact is a no-op. It reports
// whether the database changed.
func (d *Database) Insert(f Fact) bool {
	if len(d.removed) > 0 {
		if next, ok := d.removed.Remove(f); ok {
			// Reinsert of a snapshot fact: cancel the removal.
			d.removed = next
			d.invalidate(f)
			d.size++
			return true
		}
	}
	if _, ok := d.snap.facts[f]; ok {
		return false
	}
	next, ok := d.added.Insert(f)
	if !ok {
		return false
	}
	d.added = next
	d.invalidate(f)
	d.size++
	d.maybeAutoSeal()
	return true
}

// Delete removes a fact; deleting an absent fact is a no-op. It reports
// whether the database changed.
func (d *Database) Delete(f Fact) bool {
	if len(d.added) > 0 {
		if next, ok := d.added.Remove(f); ok {
			d.added = next
			d.invalidate(f)
			d.size--
			return true
		}
	}
	if _, ok := d.snap.facts[f]; !ok {
		return false
	}
	next, ok := d.removed.Insert(f)
	if !ok {
		return false
	}
	d.removed = next
	d.invalidate(f)
	d.size--
	d.maybeAutoSeal()
	return true
}

// FactsByPred returns the facts with the given predicate. The returned
// slice must not be modified. When the predicate's delta is empty this is
// the snapshot's shared slice (zero copies); otherwise a merged view is
// built once and cached until the predicate changes again.
func (d *Database) FactsByPred(pred intern.Sym) []Fact {
	if len(d.added) == 0 && len(d.removed) == 0 {
		return d.snap.byPred[pred]
	}
	nAdd, nRem := d.added.countPred(pred), d.removed.countPred(pred)
	if nAdd == 0 && nRem == 0 {
		return d.snap.byPred[pred]
	}
	for i := range d.merged {
		if d.merged[i].pred == pred {
			return d.merged[i].facts
		}
	}
	base := d.snap.byPred[pred]
	out := make([]Fact, 0, len(base)+nAdd-nRem)
	if nRem == 0 {
		out = append(out, base...)
	} else {
		for _, f := range base {
			if !d.removed.Has(f) {
				out = append(out, f)
			}
		}
	}
	if nAdd > 0 {
		for _, f := range d.added {
			if f.Pred() == pred {
				out = append(out, f)
			}
		}
	}
	d.merged = append(d.merged, mergedView{pred: pred, facts: out})
	return out
}

// FactsByPredName is FactsByPred addressed by predicate name.
func (d *Database) FactsByPredName(pred string) []Fact {
	sym, ok := intern.Lookup(pred)
	if !ok {
		return nil
	}
	return d.FactsByPred(sym)
}

// AtomsByPred returns the facts with the given predicate as ground atoms.
func (d *Database) AtomsByPred(pred intern.Sym) []logic.Atom {
	fs := d.FactsByPred(pred)
	out := make([]logic.Atom, len(fs))
	for i, f := range fs {
		out[i] = f.Atom()
	}
	return out
}

// forEach calls fn for every fact of the database, in no particular order.
func (d *Database) forEach(fn func(Fact)) {
	if len(d.removed) == 0 {
		for f := range d.snap.facts {
			fn(f)
		}
	} else {
		for f := range d.snap.facts {
			if !d.removed.Has(f) {
				fn(f)
			}
		}
	}
	for _, f := range d.added {
		fn(f)
	}
}

// Facts returns all facts in canonical order. On a sealed database the
// order is served from the snapshot's cached sort.
func (d *Database) Facts() []Fact {
	if d.Sealed() {
		cached := d.snap.sortedFacts()
		out := make([]Fact, len(cached))
		copy(out, cached)
		return out
	}
	out := make([]Fact, 0, d.size)
	d.forEach(func(f Fact) { out = append(out, f) })
	SortFacts(out)
	return out
}

// Predicates returns the sorted list of predicate names with at least one
// fact.
func (d *Database) Predicates() []string {
	seen := map[intern.Sym]bool{}
	var syms []intern.Sym
	d.forEach(func(f Fact) {
		p := f.Pred()
		if !seen[p] {
			seen[p] = true
			syms = append(syms, p)
		}
	})
	intern.SortSyms(syms)
	return intern.Names(syms)
}

// DomSyms returns the active domain dom(D) as symbols, sorted by symbol id
// (deterministic within a process). The domain is maintained incrementally
// — inserts and deletes adjust per-constant reference counts — so this
// never rescans the fact set.
func (d *Database) DomSyms() []intern.Sym {
	if len(d.added) == 0 && len(d.removed) == 0 {
		// No deltas: the snapshot's (all-positive) domain is the answer.
		return d.snap.domSyms
	}
	dc := d.domDelta()
	out := make([]intern.Sym, 0, len(d.snap.domSyms)+len(dc.syms))
	i, j := 0, 0
	for i < len(d.snap.domSyms) || j < len(dc.syms) {
		switch {
		case j >= len(dc.syms) || (i < len(d.snap.domSyms) && d.snap.domSyms[i] < dc.syms[j]):
			if d.snap.domCnt[i] > 0 {
				out = append(out, d.snap.domSyms[i])
			}
			i++
		case i >= len(d.snap.domSyms) || dc.syms[j] < d.snap.domSyms[i]:
			if dc.cnt[j] > 0 {
				out = append(out, dc.syms[j])
			}
			j++
		default:
			if d.snap.domCnt[i]+dc.cnt[j] > 0 {
				out = append(out, d.snap.domSyms[i])
			}
			i++
			j++
		}
	}
	return out
}

// Dom returns the active domain dom(D): the sorted set of constant names
// appearing in the database.
func (d *Database) Dom() []string {
	names := intern.Names(d.DomSyms())
	sort.Strings(names)
	return names
}

// HasConst reports whether the constant occurs in the database: a binary
// search of the snapshot domain plus a scan of the (tiny) fact delta.
func (d *Database) HasConst(c intern.Sym) bool {
	n := d.snap.domRef(c)
	for _, f := range d.added {
		for _, a := range f.Args() {
			if a == c {
				n++
			}
		}
	}
	for _, f := range d.removed {
		for _, a := range f.Args() {
			if a == c {
				n--
			}
		}
	}
	return n > 0
}

// Clone returns an independent copy of the database. The snapshot is
// shared; only the delta is copied, so cloning mid-walk states is
// O(|delta|) and cloning a sealed database is O(1).
func (d *Database) Clone() *Database {
	return &Database{
		snap:    d.snap,
		added:   d.added.Clone(2),
		removed: d.removed.Clone(2),
		size:    d.size,
	}
}

// Seal collapses the delta into a fresh immutable snapshot — including the
// per-predicate argument indexes the homomorphism search probes — after
// which Clone is O(1) and reads never consult delta slices. Sealing an
// unchanged database is a no-op. The caller must be the only writer.
func (d *Database) Seal() {
	if len(d.added) == 0 && len(d.removed) == 0 {
		return
	}
	snap := &snapshot{
		facts:  make(map[Fact]struct{}, d.size),
		byPred: make(map[intern.Sym][]Fact, len(d.snap.byPred)+2),
		size:   d.size,
	}
	var dom domCounts
	d.forEach(func(f Fact) {
		snap.facts[f] = struct{}{}
		p := f.Pred()
		snap.byPred[p] = append(snap.byPred[p], f)
		for _, c := range f.Args() {
			dom.adjust(c, 1)
		}
	})
	snap.domSyms, snap.domCnt = dom.syms, dom.cnt
	snap.idx = buildIndex(snap.byPred)
	d.snap = snap
	d.added = nil
	d.removed = nil
	d.merged = nil
}

// DeltaSize reports the number of facts in the copy-on-write delta; for
// diagnostics and tests.
func (d *Database) DeltaSize() int { return len(d.added) + len(d.removed) }

// Sealed reports whether the database is an unmodified snapshot (empty
// delta). A sealed database is safe for concurrent readers; an unsealed one
// is single-owner, because even read methods may populate internal caches.
func (d *Database) Sealed() bool { return len(d.added) == 0 && len(d.removed) == 0 }

// Compact folds the delta into a fresh snapshot once it exceeds limit
// facts, reporting whether it sealed. Long-lived writers that publish
// snapshots per update call this instead of Seal: small deltas stay O(delta)
// to clone and publish, and the occasional O(|D|) fold keeps the delta —
// and hence every later Clone — bounded. The caller must be the only
// writer.
func (d *Database) Compact(limit int) bool {
	if d.DeltaSize() <= limit {
		return false
	}
	d.Seal()
	return true
}

// Equal reports whether two databases contain exactly the same facts.
func (d *Database) Equal(o *Database) bool {
	if d.size != o.size {
		return false
	}
	eq := true
	d.forEach(func(f Fact) {
		if eq && !o.Contains(f) {
			eq = false
		}
	})
	return eq
}

// SubsetOf reports whether every fact of d is in o.
func (d *Database) SubsetOf(o *Database) bool {
	if d.size > o.size {
		return false
	}
	ok := true
	d.forEach(func(f Fact) {
		if ok && !o.Contains(f) {
			ok = false
		}
	})
	return ok
}

// Key returns a canonical encoding of the database contents, suitable for
// grouping repairs that arise from different repairing sequences. The
// encoding matches the string-keyed predecessor byte for byte (sorted fact
// keys joined by ';'), so persisted groupings remain valid.
func (d *Database) Key() string {
	keys := make([]string, 0, d.size)
	d.forEach(func(f Fact) { keys = append(keys, f.Key()) })
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

// AppendFactIDs appends the interned ids of the database's facts to buf in
// ascending id order and returns the extended slice. The snapshot's sorted
// ids are cached once and merged against the (id-sorted) delta, so the call
// is a linear weave with no per-fact hashing or string work — the building
// block of IDKey and of the exact engine's incremental child keys.
func (d *Database) AppendFactIDs(buf []uint32) []uint32 {
	base := d.snap.sortedIDs()
	if len(d.added) == 0 && len(d.removed) == 0 {
		return append(buf, base...)
	}
	ai, ri := 0, 0
	for _, id := range base {
		if ri < len(d.removed) && d.removed[ri].id == id {
			ri++
			continue
		}
		for ai < len(d.added) && d.added[ai].id < id {
			buf = append(buf, d.added[ai].id)
			ai++
		}
		buf = append(buf, id)
	}
	for ; ai < len(d.added); ai++ {
		buf = append(buf, d.added[ai].id)
	}
	return buf
}

// AppendIDKey appends the binary encoding of a fact-id list to dst: each id
// packed as 4 big-endian bytes, so byte-lexicographic key order coincides
// with numeric id order. Callers pass ascending ids (AppendFactIDs order)
// to obtain canonical set keys.
func AppendIDKey(dst []byte, ids []uint32) []byte {
	for _, id := range ids {
		dst = append(dst, byte(id>>24), byte(id>>16), byte(id>>8), byte(id))
	}
	return dst
}

// IDKey returns a compact binary identity of the database: the facts'
// interned ids, sorted ascending and packed 4 bytes each (AppendIDKey).
// Two databases have equal IDKeys exactly when they contain the same facts
// — interned ids are in bijection with fact content — so IDKey groups
// states precisely like Key while costing one linear id weave instead of
// per-fact string materialization and a string sort. The encoding is
// process-local (interned ids depend on interning order): use it for
// in-memory merge maps, and Key for anything persisted, displayed, or
// compared across processes.
func (d *Database) IDKey() string {
	buf := make([]uint32, 0, d.size)
	buf = d.AppendFactIDs(buf)
	return string(AppendIDKey(make([]byte, 0, 4*len(buf)), buf))
}

// String renders the database as a sorted fact set.
func (d *Database) String() string { return FactsString(d.Facts()) }

// InsertAll inserts every fact of the slice, reporting how many were new.
func (d *Database) InsertAll(fs []Fact) int {
	n := 0
	for _, f := range fs {
		if d.Insert(f) {
			n++
		}
	}
	return n
}

// DeleteAll deletes every fact of the slice, reporting how many were
// present.
func (d *Database) DeleteAll(fs []Fact) int {
	n := 0
	for _, f := range fs {
		if d.Delete(f) {
			n++
		}
	}
	return n
}

// SymmetricDiff returns ∆(d, o) = (d − o) ∪ (o − d) as two slices: the
// facts only in d, and the facts only in o.
func (d *Database) SymmetricDiff(o *Database) (onlyD, onlyO []Fact) {
	d.forEach(func(f Fact) {
		if !o.Contains(f) {
			onlyD = append(onlyD, f)
		}
	})
	o.forEach(func(f Fact) {
		if !d.Contains(f) {
			onlyO = append(onlyO, f)
		}
	})
	SortFacts(onlyD)
	SortFacts(onlyO)
	return onlyD, onlyO
}
