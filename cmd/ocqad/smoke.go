package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"reflect"
	"time"

	"repro/internal/abc"
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/generators"
	"repro/internal/markov"
	"repro/internal/serve"
	"repro/internal/workload"
)

// runSmoke is the -smoke self-test: an end-to-end exercise of the resident
// server over a real loopback HTTP listener. It generates an islands
// workload, interleaves ingest batches and fact probes for n operations,
// mirrors every ingest on a local shadow database, and finally cross-checks
// the served probabilities of every island edge against a from-scratch
// factored recompute of the shadow. Run under -race this doubles as the
// concurrency smoke: HTTP handler goroutines race the writer loop by
// construction.
func runSmoke(n int, opts serve.Options) error {
	db, sigma, ops := workload.ServeMix(workload.ServeMixConfig{
		Islands:        120,
		FactsPerIsland: 4,
		IsoRatio:       0.8,
		Ops:            n,
		IngestRatio:    0.3,
		Seed:           7,
	})
	gen := generators.Uniform{}
	if opts.LogPath != "" {
		// A log left over from a previous run would replay foreign history
		// into this run's fresh base.
		if err := os.Remove(opts.LogPath); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	s, err := serve.New(db, sigma, gen, opts)
	if err != nil {
		return err
	}
	defer s.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: serve.Handler(s)}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	shadow := db.Clone()
	client := &http.Client{Timeout: 30 * time.Second}
	post := func(path string, req, resp any) error {
		body, err := json.Marshal(req)
		if err != nil {
			return err
		}
		r, err := client.Post(base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			var e struct {
				Error string `json:"error"`
			}
			json.NewDecoder(r.Body).Decode(&e)
			return fmt.Errorf("%s: HTTP %d: %s", path, r.StatusCode, e.Error)
		}
		return json.NewDecoder(r.Body).Decode(resp)
	}

	// Background probers keep reads in flight while the writer publishes
	// snapshots, so -race exercises the reader/writer boundary for real.
	probeStop := make(chan struct{})
	probeErr := make(chan error, 4)
	allFacts := db.Facts()
	for w := 0; w < 4; w++ {
		go func(w int) {
			i := w
			for {
				select {
				case <-probeStop:
					probeErr <- nil
					return
				default:
				}
				f := allFacts[i%len(allFacts)]
				i += 7
				var resp serve.FactResponse
				if err := post("/v1/fact", serve.FactRequest{Fact: f.String()}, &resp); err != nil {
					probeErr <- err
					return
				}
			}
		}(w)
	}

	ingests := 0
	for _, op := range ops {
		if op.Ingest {
			req := serve.IngestRequest{}
			if op.Insert {
				req.Insert = []string{op.Fact.String()}
				shadow.Insert(op.Fact)
			} else {
				req.Delete = []string{op.Fact.String()}
				shadow.Delete(op.Fact)
			}
			var resp serve.IngestResponse
			if err := post("/v1/ingest", req, &resp); err != nil {
				return err
			}
			ingests++
			if resp.Version != uint64(ingests) {
				return fmt.Errorf("ingest %d published version %d", ingests, resp.Version)
			}
		} else {
			var resp serve.FactResponse
			if err := post("/v1/fact", serve.FactRequest{Fact: op.Fact.String()}, &resp); err != nil {
				return err
			}
		}
	}

	close(probeStop)
	for w := 0; w < 4; w++ {
		if err := <-probeErr; err != nil {
			return err
		}
	}

	// Cross-check the final served state against a from-scratch recompute
	// of the shadow database.
	vs := constraint.FindViolations(shadow, sigma)
	part := abc.NewPartition(vs)
	fresh, err := core.ComputeFactoredDelta(shadow, sigma, gen, markov.ExploreOptions{MaxStates: opts.MaxStates}, core.FactoredOptions{}, core.FactoredDelta{Part: part})
	if err != nil {
		return err
	}
	checked := 0
	for _, f := range shadow.Facts() {
		want := fresh.FactProbability(f)
		var resp serve.FactResponse
		if err := post("/v1/fact", serve.FactRequest{Fact: f.String()}, &resp); err != nil {
			return err
		}
		if resp.P.Rat != want.RatString() {
			return fmt.Errorf("fact %s: served %s, from-scratch %s", f, resp.P.Rat, want.RatString())
		}
		checked++
	}
	st := s.Stats()
	if st.Version != uint64(ingests) {
		return fmt.Errorf("final version %d, want %d", st.Version, ingests)
	}
	fmt.Printf("smoke: %d ops (%d ingests), %d facts cross-checked; %d components, %d cumulative recomputes, %d cache shapes\n",
		len(ops), ingests, checked, st.Components, st.CumRecomputed, st.CacheShapes)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	if err := <-errc; err != http.ErrServerClosed {
		return err
	}

	// Kill-and-replay: shut the server down, restart it from the op log
	// against the same base corpus, and require the replayed snapshot to
	// reproduce the pre-shutdown one exactly — stats field for field,
	// marginals bit for bit.
	if opts.LogPath != "" {
		s.Close()
		replayed, err := serve.New(db, sigma, gen, opts)
		if err != nil {
			return fmt.Errorf("replay restart: %w", err)
		}
		defer replayed.Close()
		if got := replayed.Stats(); !reflect.DeepEqual(got, st) {
			return fmt.Errorf("replayed stats diverge:\n  replayed %+v\n  live     %+v", got, st)
		}
		for _, f := range shadow.Facts() {
			want := fresh.FactProbability(f)
			got, _ := replayed.FactProbability(f)
			if got.Cmp(want) != 0 {
				return fmt.Errorf("replayed fact %s: %s, from-scratch %s", f, got.RatString(), want.RatString())
			}
		}
		fmt.Printf("smoke: replayed %d publications from %s; stats and marginals match exactly\n", st.Version, opts.LogPath)
		os.Remove(opts.LogPath)
	}
	return nil
}
