// Quickstart: repair an inconsistent database operationally and ask a
// query under the operational CQA semantics — exactly, then approximately.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/generators"
	"repro/internal/markov"
	"repro/internal/parse"
	"repro/internal/prob"
	"repro/internal/repair"
	"repro/internal/sampling"
)

func main() {
	// A tiny employee directory merged from two HR exports: emp is keyed
	// by the employee id, but the two sources disagree about eve.
	db, err := parse.Database(`
		emp(alice, sales).
		emp(bob, engineering).
		emp(eve, marketing).
		emp(eve, support).
	`)
	if err != nil {
		log.Fatal(err)
	}
	sigma, err := parse.Constraints(`
		emp(X, Y), emp(X, Z) -> Y = Z.
	`)
	if err != nil {
		log.Fatal(err)
	}
	q, err := parse.Query(`Dept(D) := exists X: emp(X, D).`)
	if err != nil {
		log.Fatal(err)
	}

	inst, err := repair.NewInstance(db, sigma)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database consistent: %v\n\n", inst.Consistent())

	// Exact semantics under the uniform chain generator M^u_Σ: explore the
	// repairing Markov chain and read off repairs and probabilities.
	sem, err := core.Compute(inst, generators.Uniform{}, markov.ExploreOptions{MaxStates: 100000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("operational repairs:")
	for _, r := range sem.Repairs {
		fmt.Printf("  P = %-16s %s\n", prob.Format(r.P), r.DB)
	}
	fmt.Println()
	fmt.Print(sem.OCA(q))

	// The same query approximated with the Theorem 9 sampler: n = 150
	// random repairing sequences give every tuple's probability within
	// ε = 0.1 of the truth with confidence 1 − δ = 0.9.
	est := &sampling.Estimator{Inst: inst, Gen: generators.Uniform{}, Seed: 1}
	run, err := est.EstimateAnswers(q, 0.1, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\napproximate OCA from %d sampled sequences:\n", run.N)
	for _, e := range run.Estimates {
		fmt.Printf("  (%s) : %.3f\n", e.Tuple[0], e.P)
	}
}
