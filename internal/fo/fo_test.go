package fo

import (
	"testing"

	"repro/internal/intern"
	"repro/internal/logic"
	"repro/internal/relation"
)

func v(n string) logic.Term                    { return logic.Var(n) }
func c(n string) logic.Term                    { return logic.Const(n) }
func at(p string, ts ...logic.Term) logic.Atom { return logic.NewAtom(p, ts...) }
func f(p string, args ...string) relation.Fact { return relation.NewFact(p, args...) }

func pathDB() *relation.Database {
	return relation.FromFacts(
		f("E", "a", "b"), f("E", "b", "c"), f("E", "c", "d"),
	)
}

func TestEvalAtomAndEq(t *testing.T) {
	d := pathDB()
	dom := d.DomSyms()
	env := logic.Subst{intern.S("x"): intern.S("a"), intern.S("y"): intern.S("b")}
	if !(Atom{A: at("E", v("x"), v("y"))}).Eval(d, dom, env) {
		t.Error("E(a,b) holds")
	}
	if (Atom{A: at("E", v("y"), v("x"))}).Eval(d, dom, env) {
		t.Error("E(b,a) does not hold")
	}
	if !(Eq{L: v("x"), R: c("a")}).Eval(d, dom, env) {
		t.Error("x = a holds")
	}
	if (Eq{L: v("x"), R: v("y")}).Eval(d, dom, env) {
		t.Error("x = y does not hold")
	}
}

func TestEvalConnectives(t *testing.T) {
	d := pathDB()
	dom := d.DomSyms()
	env := logic.NewSubst()
	tru := Truth{Value: true}
	fls := Truth{Value: false}
	cases := []struct {
		f    Formula
		want bool
	}{
		{Not{F: fls}, true},
		{Not{F: tru}, false},
		{And{L: tru, R: tru}, true},
		{And{L: tru, R: fls}, false},
		{Or{L: fls, R: tru}, true},
		{Or{L: fls, R: fls}, false},
		{Implies{L: fls, R: fls}, true},
		{Implies{L: tru, R: fls}, false},
		{Iff{L: fls, R: fls}, true},
		{Iff{L: tru, R: fls}, false},
	}
	for _, tc := range cases {
		if got := tc.f.Eval(d, dom, env); got != tc.want {
			t.Errorf("%s = %v, want %v", tc.f, got, tc.want)
		}
	}
}

func TestEvalQuantifiers(t *testing.T) {
	d := pathDB()
	dom := d.DomSyms()
	env := logic.NewSubst()

	// ∃x,y E(x,y) — true.
	ex := Exists{Vars: []logic.Term{v("x"), v("y")}, F: Atom{A: at("E", v("x"), v("y"))}}
	if !ex.Eval(d, dom, env) {
		t.Error("∃ edge must hold")
	}
	// ∀x ∃y E(x,y) — false (d has no outgoing edge).
	all := ForAll{Vars: []logic.Term{v("x")},
		F: Exists{Vars: []logic.Term{v("y")}, F: Atom{A: at("E", v("x"), v("y"))}}}
	if all.Eval(d, dom, env) {
		t.Error("∀x∃y E(x,y) must fail at x=d")
	}
	// Environment must be restored after quantification.
	if len(env) != 0 {
		t.Errorf("environment leaked bindings: %v", env)
	}
}

func TestFreeVars(t *testing.T) {
	phi := And{
		L: Atom{A: at("E", v("x"), v("y"))},
		R: Exists{Vars: []logic.Term{v("z")},
			F: And{L: Atom{A: at("E", v("y"), v("z"))}, R: Eq{L: v("w"), R: c("a")}}},
	}
	fv := FreeVars(phi)
	want := []string{"x", "y", "w"}
	if len(fv) != len(want) {
		t.Fatalf("FreeVars = %v, want %v", fv, want)
	}
	for i := range want {
		if fv[i] != want[i] {
			t.Errorf("FreeVars[%d] = %s, want %s", i, fv[i], want[i])
		}
	}
}

func TestQueryValidate(t *testing.T) {
	phi := Atom{A: at("E", v("x"), v("y"))}
	if _, err := NewQuery("Q", []logic.Term{v("x")}, phi); err == nil {
		t.Error("free variable y not among outputs must fail")
	}
	if _, err := NewQuery("Q", []logic.Term{v("x"), v("x"), v("y")}, phi); err == nil {
		t.Error("duplicate output variable must fail")
	}
	if _, err := NewQuery("Q", []logic.Term{c("a"), v("x"), v("y")}, phi); err == nil {
		t.Error("constant output term must fail")
	}
	if _, err := NewQuery("Q", []logic.Term{v("x"), v("y"), v("extra")}, phi); err != nil {
		t.Errorf("extra output variables are allowed: %v", err)
	}
}

func TestAnswersCQ(t *testing.T) {
	d := pathDB()
	q := MustQuery("Path2", []logic.Term{v("x"), v("z")},
		Exists{Vars: []logic.Term{v("y")},
			F: And{
				L: Atom{A: at("E", v("x"), v("y"))},
				R: Atom{A: at("E", v("y"), v("z"))},
			}})
	got := q.Answers(d)
	want := [][]string{{"a", "c"}, {"b", "d"}}
	if len(got) != len(want) {
		t.Fatalf("Answers = %v, want %v", got, want)
	}
	for i := range want {
		if TupleKey(got[i]) != TupleKey(want[i]) {
			t.Errorf("Answers[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAnswersCQMatchesEnum(t *testing.T) {
	// The CQ fast path and the generic evaluator must agree.
	d := pathDB()
	q := MustQuery("Path2", []logic.Term{v("x"), v("z")},
		Exists{Vars: []logic.Term{v("y")},
			F: And{
				L: Atom{A: at("E", v("x"), v("y"))},
				R: Atom{A: at("E", v("y"), v("z"))},
			}})
	atoms, ok := q.asConjunctiveBody()
	if !ok {
		t.Fatal("query must be recognized as a CQ")
	}
	collect := func(enum func(fn func([]intern.Sym))) [][]string {
		var out [][]string
		enum(func(tuple []intern.Sym) { out = append(out, intern.Names(tuple)) })
		SortTuples(out)
		return out
	}
	cq := collect(func(fn func([]intern.Sym)) { q.forEachAnswerCQ(d, atoms, fn) })
	enum := collect(func(fn func([]intern.Sym)) { q.forEachAnswerEnum(d, fn) })
	direct := q.answersCQ(d, atoms) // the specialized body behind Answers
	if len(cq) != len(enum) || len(direct) != len(enum) {
		t.Fatalf("CQ path: %v, enum path: %v, direct path: %v", cq, enum, direct)
	}
	for i := range cq {
		if TupleKey(cq[i]) != TupleKey(enum[i]) || TupleKey(direct[i]) != TupleKey(enum[i]) {
			t.Errorf("paths disagree at %d: %v vs %v vs %v", i, cq[i], enum[i], direct[i])
		}
	}
}

func TestAnswersNonCQ(t *testing.T) {
	// Sinks: nodes with no outgoing edge. ¬∃y E(x,y), with x ranging over
	// the active domain.
	d := pathDB()
	q := MustQuery("Sink", []logic.Term{v("x")},
		Not{F: Exists{Vars: []logic.Term{v("y")}, F: Atom{A: at("E", v("x"), v("y"))}}})
	got := q.Answers(d)
	if len(got) != 1 || got[0][0] != "d" {
		t.Errorf("Sinks = %v, want [d]", got)
	}
}

func TestHoldsRespectsActiveDomain(t *testing.T) {
	d := pathDB()
	// x = x holds for any binding, but tuples outside dom(D) are not
	// answers by the paper's semantics.
	q := MustQuery("All", []logic.Term{v("x")}, Eq{L: v("x"), R: v("x")})
	if !q.Holds(d, []string{"a"}) {
		t.Error("a ∈ dom(D) must satisfy x = x")
	}
	if q.Holds(d, []string{"zz"}) {
		t.Error("zz ∉ dom(D) must not be an answer")
	}
	if q.Holds(d, []string{"a", "b"}) {
		t.Error("wrong arity must not hold")
	}
}

func TestBooleanQuery(t *testing.T) {
	d := pathDB()
	q := MustQuery("HasEdge", nil,
		Exists{Vars: []logic.Term{v("x"), v("y")}, F: Atom{A: at("E", v("x"), v("y"))}})
	if !q.IsBoolean() {
		t.Error("no outputs → boolean")
	}
	got := q.Answers(d)
	if len(got) != 1 || len(got[0]) != 0 {
		t.Errorf("true boolean query must return one empty tuple, got %v", got)
	}
	if !q.Holds(d, nil) {
		t.Error("Holds(nil) must be true")
	}
	empty := relation.NewDatabase()
	if got := q.Answers(empty); len(got) != 0 {
		t.Errorf("false boolean query must return no tuples, got %v", got)
	}
}

func TestUnconstrainedOutputVar(t *testing.T) {
	// Output variable not in the body ranges over the active domain; CQ
	// and enum paths must agree.
	d := relation.FromFacts(f("E", "a", "b"))
	q := MustQuery("Pair", []logic.Term{v("x"), v("w")},
		Exists{Vars: []logic.Term{v("y")}, F: Atom{A: at("E", v("x"), v("y"))}})
	got := q.Answers(d)
	// x = a; w ∈ {a, b}.
	if len(got) != 2 {
		t.Fatalf("Answers = %v", got)
	}
	enumCount := 0
	q.forEachAnswerEnum(d, func([]intern.Sym) { enumCount++ })
	if enumCount != 2 {
		t.Fatalf("enum count = %d, want 2", enumCount)
	}
}

func TestConjDisjHelpers(t *testing.T) {
	d := pathDB()
	dom := d.DomSyms()
	env := logic.NewSubst()
	if !Conj().Eval(d, dom, env) {
		t.Error("empty conjunction is true")
	}
	if Disj().Eval(d, dom, env) {
		t.Error("empty disjunction is false")
	}
	g := Conj(Truth{Value: true}, Truth{Value: true}, Truth{Value: false})
	if g.Eval(d, dom, env) {
		t.Error("conjunction with false is false")
	}
	h := Disj(Truth{Value: false}, Truth{Value: true})
	if !h.Eval(d, dom, env) {
		t.Error("disjunction with true is true")
	}
}

func TestFormulaStrings(t *testing.T) {
	phi := ForAll{Vars: []logic.Term{v("y")},
		F: Or{L: Atom{A: at("Pref", v("x"), v("y"))}, R: Eq{L: v("x"), R: v("y")}}}
	q := MustQuery("Q", []logic.Term{v("x")}, phi)
	want := "Q(x) := forall y: (Pref(x, y) | x = y)"
	if got := q.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestSortTuples(t *testing.T) {
	ts := [][]string{{"b"}, {"a", "c"}, {"a"}, {"a", "b"}}
	SortTuples(ts)
	want := [][]string{{"a"}, {"a", "b"}, {"a", "c"}, {"b"}}
	for i := range want {
		if TupleKey(ts[i]) != TupleKey(want[i]) {
			t.Fatalf("SortTuples = %v", ts)
		}
	}
}
