package core_test

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/generators"
	"repro/internal/logic"
	"repro/internal/markov"
	"repro/internal/ops"
	"repro/internal/prob"
	"repro/internal/relation"
	"repro/internal/repair"
)

func v(n string) logic.Term                    { return logic.Var(n) }
func at(p string, ts ...logic.Term) logic.Atom { return logic.NewAtom(p, ts...) }
func f(p string, args ...string) relation.Fact { return relation.NewFact(p, args...) }

// failingInstance is the paper's D = {R(a)}, Σ = {R(x) → T(x), T(x) → ⊥}.
func failingInstance(t *testing.T) *repair.Instance {
	t.Helper()
	d := relation.FromFacts(f("R", "a"))
	tgd := constraint.MustTGD([]logic.Atom{at("R", v("x"))}, []logic.Atom{at("T", v("x"))})
	dc := constraint.MustDC([]logic.Atom{at("T", v("x"))})
	return repair.MustInstance(d, constraint.NewSet(tgd, dc))
}

// TestConditionalProbabilityNormalization: under the uniform chain the
// instance has two absorbing sequences — the failing +T(a) and the
// successful -R(a) — each with probability 1/2. The empty database is the
// only repair; a query true on it has CP 1 (normalized by success mass),
// not 1/2.
func TestConditionalProbabilityNormalization(t *testing.T) {
	inst := failingInstance(t)
	sem, err := core.Compute(inst, generators.Uniform{}, markov.ExploreOptions{MaxStates: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if sem.AbsorbingStates != 2 || sem.FailingStates != 1 {
		t.Fatalf("absorbing = %d failing = %d, want 2 and 1", sem.AbsorbingStates, sem.FailingStates)
	}
	if sem.SuccessP.Cmp(big.NewRat(1, 2)) != 0 {
		t.Errorf("success mass = %s, want 1/2", sem.SuccessP.RatString())
	}
	if sem.FailP.Cmp(big.NewRat(1, 2)) != 0 {
		t.Errorf("failing mass = %s, want 1/2", sem.FailP.RatString())
	}
	if len(sem.Repairs) != 1 || sem.Repairs[0].DB.Size() != 0 {
		t.Fatalf("repairs = %v, want only the empty database", sem.Repairs)
	}

	// Boolean query "no R fact": true on the empty repair.
	noR := fo.MustQuery("NoR", nil,
		fo.Not{F: fo.Exists{Vars: []logic.Term{v("x")}, F: fo.Atom{A: at("R", v("x"))}}})
	cp := sem.CP(noR, nil)
	if !prob.IsOne(cp) {
		t.Errorf("CP(NoR) = %s, want 1 (conditional on success)", cp.RatString())
	}
}

// TestNoRepairMeansZero: when every absorbing state fails, CP is 0 by
// definition.
func TestNoRepairMeansZero(t *testing.T) {
	// D = {R(a)}, Σ = {R(x) → T(x), T(x) → ⊥} with insert-only chain:
	// assign all probability to insertions.
	inst := failingInstance(t)
	insertOnly := generators.WeightFunc{
		Label: "insert-only",
		Fn: func(_ *repair.State, op ops.Op) *big.Rat {
			if op.IsInsert() {
				return prob.One()
			}
			return prob.Zero()
		},
	}
	sem, err := core.Compute(inst, insertOnly, markov.ExploreOptions{MaxStates: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(sem.Repairs) != 0 {
		t.Fatalf("repairs = %v, want none", sem.Repairs)
	}
	if sem.SuccessP.Sign() != 0 {
		t.Errorf("success mass = %s, want 0", sem.SuccessP.RatString())
	}
	q := fo.MustQuery("True", nil, fo.Truth{Value: true})
	if cp := sem.CP(q, nil); cp.Sign() != 0 {
		t.Errorf("CP = %s, want 0 when no repair exists", cp.RatString())
	}
	if oca := sem.OCA(q); len(oca.Answers) != 0 {
		t.Errorf("OCA = %v, want empty", oca.Answers)
	}
}

// TestHittingMassConservation: repairs' probabilities plus failing mass is
// exactly 1 for every generator on a mixed instance.
func TestHittingMassConservation(t *testing.T) {
	inst := failingInstance(t)
	for _, gen := range []markov.Generator{
		generators.Uniform{},
		generators.UniformDeletions{},
	} {
		sem, err := core.Compute(inst, gen, markov.ExploreOptions{MaxStates: 1000})
		if err != nil {
			t.Fatalf("%s: %v", gen.Name(), err)
		}
		total := new(big.Rat).Add(sem.SuccessP, sem.FailP)
		if !prob.IsOne(total) {
			t.Errorf("%s: success + fail = %s, want 1", gen.Name(), total.RatString())
		}
		repairMass := prob.Zero()
		for _, r := range sem.Repairs {
			repairMass.Add(repairMass, r.P)
		}
		if repairMass.Cmp(sem.SuccessP) != 0 {
			t.Errorf("%s: repair mass %s ≠ success mass %s", gen.Name(), repairMass.RatString(), sem.SuccessP.RatString())
		}
	}
}

// randomKeyInstance builds a small random key-violation instance from a
// quick-check seed.
func randomKeyInstance(seed int64) *repair.Instance {
	rng := rand.New(rand.NewSource(seed))
	d := relation.NewDatabase()
	keys := []string{"k1", "k2"}
	vals := []string{"u", "w", "z"}
	n := 2 + rng.Intn(4)
	for i := 0; i < n; i++ {
		d.Insert(f("R", keys[rng.Intn(len(keys))], vals[rng.Intn(len(vals))]))
	}
	eta := constraint.MustEGD(
		[]logic.Atom{at("R", v("x"), v("y")), at("R", v("x"), v("z"))},
		v("y"), v("z"),
	)
	return repair.MustInstance(d, constraint.NewSet(eta))
}

// TestQuickRepairInvariants: on random key instances under the uniform
// chain — (1) every repair is a consistent subset of D, (2) probabilities
// sum to 1, (3) CP values lie in [0,1], (4) certain ABC facts (those in no
// conflict) have CP 1.
func TestQuickRepairInvariants(t *testing.T) {
	check := func(seed int64) bool {
		inst := randomKeyInstance(seed)
		sem, err := core.Compute(inst, generators.Uniform{}, markov.ExploreOptions{MaxStates: 500000})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if !prob.IsOne(sem.SuccessP) {
			t.Logf("seed %d: success mass %s", seed, sem.SuccessP.RatString())
			return false
		}
		vs := constraint.FindViolations(inst.Initial(), inst.Sigma())
		conflicted := map[string]bool{}
		for _, fact := range vs.InvolvedFacts() {
			conflicted[fact.Key()] = true
		}
		x, y := v("x"), v("y")
		q := fo.MustQuery("All", []logic.Term{x, y}, fo.Atom{A: at("R", x, y)})
		oca := sem.OCA(q)
		for _, r := range sem.Repairs {
			if !r.DB.SubsetOf(inst.Initial()) {
				t.Logf("seed %d: repair adds facts", seed)
				return false
			}
			if !inst.Sigma().Satisfied(r.DB) {
				t.Logf("seed %d: inconsistent repair", seed)
				return false
			}
		}
		for _, a := range oca.Answers {
			if !prob.InUnit(a.P) {
				t.Logf("seed %d: CP outside [0,1]", seed)
				return false
			}
			fact := f("R", a.Tuple[0], a.Tuple[1])
			if !conflicted[fact.Key()] && !prob.IsOne(a.P) {
				t.Logf("seed %d: clean fact %s has CP %s", seed, fact, a.P.RatString())
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 30,
		Values:   nil,
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

// TestCPHoldsVsOCAAgreement: per-tuple CP must equal the OCA entry.
func TestCPHoldsVsOCAAgreement(t *testing.T) {
	inst := randomKeyInstance(77)
	sem, err := core.Compute(inst, generators.Uniform{}, markov.ExploreOptions{MaxStates: 500000})
	if err != nil {
		t.Fatal(err)
	}
	x, y := v("x"), v("y")
	q := fo.MustQuery("All", []logic.Term{x, y}, fo.Atom{A: at("R", x, y)})
	oca := sem.OCA(q)
	for _, a := range oca.Answers {
		if cp := sem.CP(q, a.Tuple); cp.Cmp(a.P) != 0 {
			t.Errorf("CP(%v) = %s but OCA says %s", a.Tuple, cp.RatString(), a.P.RatString())
		}
	}
	// A tuple outside every repair.
	if cp := sem.CP(q, []string{"nope", "nope"}); cp.Sign() != 0 {
		t.Errorf("CP(nope) = %s", cp.RatString())
	}
}

// TestCertainSubsetOfAnswers: tuples with CP = 1 are exactly those holding
// in every repair.
func TestCertainSubsetOfAnswers(t *testing.T) {
	inst := randomKeyInstance(123)
	sem, err := core.Compute(inst, generators.Uniform{}, markov.ExploreOptions{MaxStates: 500000})
	if err != nil {
		t.Fatal(err)
	}
	x, y := v("x"), v("y")
	q := fo.MustQuery("All", []logic.Term{x, y}, fo.Atom{A: at("R", x, y)})
	certain := sem.Certain(q)
	for _, tuple := range certain {
		for _, r := range sem.Repairs {
			if !q.Holds(r.DB, tuple) {
				t.Errorf("certain tuple %v missing from repair %s", tuple, r.DB)
			}
		}
	}
}
