package abc

import (
	"sort"
	"sync/atomic"

	"repro/internal/constraint"
	"repro/internal/relation"
)

// This file adds the resident, incrementally-maintained form of the
// conflict components: a Partition keeps the components of the conflict
// hypergraph together with the violations that induce them, and Update
// re-partitions only the region reachable from a violation-set delta.
//
// Soundness of the delta scope: an update changes the component structure
// only through the facts it touches — the changed facts themselves plus the
// body facts of every eliminated or introduced violation
// (constraint.TouchedFacts). A component containing no touched fact keeps
// exactly its violation set (an eliminated violation's body is touched, so
// it cannot belong to such a component) and no introduced violation can
// attach to it (introduced bodies are touched too), so the component — and
// anything a higher layer derived from its fact set — carries over
// verbatim. The affected region (components containing a touched fact) is
// re-union-found in isolation over its surviving violations plus the
// introduced ones.

// Island is one connected component of the conflict hypergraph, resident
// across updates. Islands are immutable once published by NewPartition or
// Update: an update that touches an island replaces it rather than mutating
// it, so partitions from successive updates share unaffected islands.
type Island struct {
	// Facts are the island's facts, sorted; islands partition the conflict
	// facts, so each fact belongs to exactly one island.
	Facts []relation.Fact
	// vios are the violations whose bodies live in this island.
	vios []constraint.Violation
	// hash memoizes Hash (0 = not yet computed; a true zero hash is
	// recomputed on every call, which changes nothing but the cost).
	hash atomic.Uint64

	// Payload is an opaque slot for a higher layer to attach what it derived
	// from the island's fact set (core attaches the component's local
	// semantics). Because unaffected islands are shared by pointer across
	// updates, a payload set once is carried — and may be reused — across
	// every later partition in the lineage. Set it before the partition is
	// shared between goroutines and never mutate it afterwards.
	Payload any
}

// Violations returns the violations inducing the island; the slice is
// shared and must not be modified.
func (isl *Island) Violations() []constraint.Violation { return isl.vios }

// Hash returns a deterministic identity hash of the island: an FNV-1a
// hash of its smallest fact's predicate and constant names. Hashing
// content rather than interned ids makes the value a pure function of the
// island's data — stable across the partitions of a lineage that share
// the island, and reproducible across process restarts whatever else the
// process happened to intern. internal/serve routes islands to its
// resident writer shards with it, so shard attribution survives an
// op-log replay bit-for-bit.
func (isl *Island) Hash() uint64 {
	if h := isl.hash.Load(); h != 0 {
		return h
	}
	const offset, prime = 14695981039346656037, 1099511628211
	f := isl.Facts[0]
	h := uint64(offset)
	for _, b := range []byte(f.PredName()) {
		h = (h ^ uint64(b)) * prime
	}
	for _, name := range f.ArgNames() {
		h = (h ^ 0xff) * prime // field separator
		for _, b := range []byte(name) {
			h = (h ^ uint64(b)) * prime
		}
	}
	isl.hash.Store(h)
	return h
}

// factLayer is one layer of the partition's persistent fact→island index: a
// small overlay map over an immutable parent chain. A nil island value is a
// tombstone (the fact left the conflict region). Layers are immutable once
// published; Update pushes an overlay sized by the affected region, and the
// chain is folded into a single base map when it grows past maxIndexDepth,
// keeping lookups bounded and the amortized per-update cost proportional to
// the region.
type factLayer struct {
	m      map[uint32]*Island
	parent *factLayer
	depth  int
}

const maxIndexDepth = 16

func (l *factLayer) lookup(id uint32) *Island {
	for ; l != nil; l = l.parent {
		if isl, ok := l.m[id]; ok {
			return isl
		}
	}
	return nil
}

// Partition is the component partition of the conflict hypergraph, designed
// for residency: IslandOf answers fact→island in O(index depth) map probes,
// and Update re-partitions only the components touched by a violation-set
// delta, returning the next partition without invalidating this one.
// Partitions are immutable; successive Updates share unaffected islands and
// index layers, so long-lived readers of an old partition stay consistent.
type Partition struct {
	islands []*Island
	idx     *factLayer
}

// NewPartition builds the partition of V(D,Σ) from scratch. The islands
// are the components of ConflictGraph.Components over the same violation
// set, in the same deterministic order (sorted by smallest fact).
func NewPartition(vs *constraint.Violations) *Partition {
	idx := map[relation.Fact]int32{}
	var facts []relation.Fact
	var parent []int32
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	indexOf := func(f relation.Fact) int32 {
		if i, ok := idx[f]; ok {
			return i
		}
		i := int32(len(facts))
		idx[f] = i
		facts = append(facts, f)
		parent = append(parent, i)
		return i
	}
	all := vs.ByID()
	for _, v := range all {
		body := v.BodyFacts()
		if len(body) == 0 {
			continue
		}
		ra := find(indexOf(body[0]))
		for _, f := range body[1:] {
			rb := find(indexOf(f))
			if ra != rb {
				parent[rb] = ra
			}
		}
	}
	islands := islandsFromUnionFind(facts, parent, find, idx, all)
	base := make(map[uint32]*Island, len(facts))
	for _, isl := range islands {
		for _, f := range isl.Facts {
			base[f.ID()] = isl
		}
	}
	return &Partition{islands: islands, idx: &factLayer{m: base}}
}

// islandsFromUnionFind groups the facts by union-find root into islands
// (each sorted, islands ordered by smallest fact) and distributes the
// violations: every violation's body is connected, so it lands in the
// island of its first body fact. idx is the caller's fact→union-find-slot
// map, shared so it is not rebuilt here.
func islandsFromUnionFind(facts []relation.Fact, parent []int32, find func(int32) int32, idx map[relation.Fact]int32, vios []constraint.Violation) []*Island {
	// Roots are indices into the parent array, so a flat slice replaces a
	// root→island map on this hot path.
	byRoot := make([]*Island, len(facts))
	var order []*Island
	for i, f := range facts {
		r := find(int32(i))
		isl := byRoot[r]
		if isl == nil {
			isl = &Island{}
			byRoot[r] = isl
			order = append(order, isl)
		}
		isl.Facts = append(isl.Facts, f)
	}
	for _, isl := range order {
		relation.SortFacts(isl.Facts)
	}
	sort.Slice(order, func(i, j int) bool {
		return relation.CompareFacts(order[i].Facts[0], order[j].Facts[0]) < 0
	})
	for _, v := range vios {
		body := v.BodyFacts()
		if len(body) == 0 {
			continue
		}
		isl := byRoot[find(idx[body[0]])]
		isl.vios = append(isl.vios, v)
	}
	return order
}

// Islands returns the islands ordered by smallest fact; the slice is shared
// and must not be modified.
func (p *Partition) Islands() []*Island { return p.islands }

// Len reports the number of islands.
func (p *Partition) Len() int { return len(p.islands) }

// Components returns the islands as bare fact sets, matching
// ConflictGraph.Components.
func (p *Partition) Components() [][]relation.Fact {
	out := make([][]relation.Fact, len(p.islands))
	for i, isl := range p.islands {
		out[i] = isl.Facts
	}
	return out
}

// IslandOf returns the island containing the fact, or nil when the fact is
// in no violation. Safe for concurrent readers.
func (p *Partition) IslandOf(f relation.Fact) *Island {
	return p.idx.lookup(f.ID())
}

// Update derives the partition after a violation-set transition: eliminated
// and introduced are the delta reported by constraint.UpdateViolationsDelta
// for an update that changed the given facts, applied to the database this
// partition was built from. It re-partitions only the affected region and
// returns the next partition plus the island churn: fresh lists the islands
// created by this update (their Payload is nil) and removed the islands of
// p that dissolved, both ordered by smallest fact. Islands outside the
// region are shared by pointer — Payload and all — and p itself remains
// valid. When the delta leaves the partition untouched (clean inserts or
// deletes), Update returns p with no churn.
func (p *Partition) Update(eliminated, introduced []constraint.Violation, changed []relation.Fact) (next *Partition, fresh, removed []*Island) {
	touched := constraint.TouchedFacts(changed, eliminated, introduced)
	seenIsl := map[*Island]bool{}
	var affected []*Island
	for _, f := range touched {
		if isl := p.IslandOf(f); isl != nil && !seenIsl[isl] {
			seenIsl[isl] = true
			affected = append(affected, isl)
		}
	}
	if len(affected) == 0 && len(introduced) == 0 {
		return p, nil, nil
	}

	// The region's violations: the affected islands' violations minus the
	// eliminated ones, plus the introduced ones (introduced bodies are
	// touched, so they cannot reach outside the region).
	elim := make(map[uint64]bool, len(eliminated))
	for _, v := range eliminated {
		elim[v.ID()] = true
	}
	seenV := map[uint64]bool{}
	var region []constraint.Violation
	for _, isl := range affected {
		for _, v := range isl.vios {
			if id := v.ID(); !elim[id] && !seenV[id] {
				seenV[id] = true
				region = append(region, v)
			}
		}
	}
	for _, v := range introduced {
		if id := v.ID(); !seenV[id] {
			seenV[id] = true
			region = append(region, v)
		}
	}

	// Re-union-find the region in isolation.
	idx := map[relation.Fact]int32{}
	var facts []relation.Fact
	var parent []int32
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	indexOf := func(f relation.Fact) int32 {
		if i, ok := idx[f]; ok {
			return i
		}
		i := int32(len(facts))
		idx[f] = i
		facts = append(facts, f)
		parent = append(parent, i)
		return i
	}
	for _, v := range region {
		body := v.BodyFacts()
		if len(body) == 0 {
			continue
		}
		ra := find(indexOf(body[0]))
		for _, f := range body[1:] {
			rb := find(indexOf(f))
			if ra != rb {
				parent[rb] = ra
			}
		}
	}
	fresh = islandsFromUnionFind(facts, parent, find, idx, region)

	removed = affected
	sort.Slice(removed, func(i, j int) bool {
		return relation.CompareFacts(removed[i].Facts[0], removed[j].Facts[0]) < 0
	})

	// Merge: p.islands minus removed is sorted, fresh is sorted, and islands
	// are disjoint fact sets, so a linear merge keeps smallest-fact order.
	merged := make([]*Island, 0, len(p.islands)-len(removed)+len(fresh))
	fi := 0
	for _, isl := range p.islands {
		if seenIsl[isl] {
			continue
		}
		for fi < len(fresh) && relation.CompareFacts(fresh[fi].Facts[0], isl.Facts[0]) < 0 {
			merged = append(merged, fresh[fi])
			fi++
		}
		merged = append(merged, isl)
	}
	merged = append(merged, fresh[fi:]...)

	overlay := make(map[uint32]*Island)
	for _, isl := range removed {
		for _, f := range isl.Facts {
			overlay[f.ID()] = nil
		}
	}
	for _, isl := range fresh {
		for _, f := range isl.Facts {
			overlay[f.ID()] = isl
		}
	}
	layer := &factLayer{m: overlay, parent: p.idx, depth: p.idx.depth + 1}
	next = &Partition{islands: merged, idx: layer}
	if layer.depth > maxIndexDepth {
		base := make(map[uint32]*Island)
		for _, isl := range merged {
			for _, f := range isl.Facts {
				base[f.ID()] = isl
			}
		}
		next.idx = &factLayer{m: base}
	}
	return next, fresh, removed
}
