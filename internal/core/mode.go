package core

import "repro/internal/markov"

// SemanticsMode selects which distribution over complete repairing
// sequences the semantics is computed under. It is an alias of
// markov.SemanticsMode (the chain layer owns the notion so that
// internal/sampling can share it without importing core); core re-exports
// it because the mode is most often chosen at this layer.
//
//   - WalkInduced: the PODS 2018 semantics — a sequence's probability is
//     the product of the generator's transition probabilities along it.
//   - SequenceUniform: the PODS 2022 uniform operational semantics — every
//     complete sequence of the chain's support is equally likely, so a
//     repair weighs (sequences producing it) / (total sequences).
type SemanticsMode = markov.SemanticsMode

const (
	WalkInduced     = markov.WalkInduced
	SequenceUniform = markov.SequenceUniform
)

// ParseSemanticsMode maps the CLI spellings "walk" / "uniform" (and long
// forms) to a mode.
func ParseSemanticsMode(s string) (SemanticsMode, error) {
	return markov.ParseSemanticsMode(s)
}
