package repair

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/constraint"
	"repro/internal/logic"
	"repro/internal/relation"
)

// randomMixedInstance draws a small random instance exercising all three
// constraint classes so the walk can mix insertions and deletions.
func randomMixedInstance(seed int64) *Instance {
	rng := rand.New(rand.NewSource(seed))
	dom := []string{"a", "b"}
	d := relation.NewDatabase()
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0:
			d.Insert(f("R", dom[rng.Intn(2)], dom[rng.Intn(2)]))
		case 1:
			d.Insert(f("S", dom[rng.Intn(2)]))
		default:
			d.Insert(f("U", dom[rng.Intn(2)]))
		}
	}
	x, y, z := v("x"), v("y"), v("z")
	key := constraint.MustEGD(
		[]logic.Atom{at("R", x, y), at("R", x, z)},
		y, z,
	)
	tgd := constraint.MustTGD(
		[]logic.Atom{at("R", x, y)},
		[]logic.Atom{at("S", y)},
	)
	dc := constraint.MustDC([]logic.Atom{at("U", x), at("S", x)})
	return MustInstance(d, constraint.NewSet(key, tgd, dc))
}

// TestQuickTreeAgreesWithValidator: on random mixed instances, every
// sequence enumerated by the incremental machinery passes the reference
// Definition 4 validator, every complete successful state is consistent,
// and every failing state is inconsistent with no extensions.
func TestQuickTreeAgreesWithValidator(t *testing.T) {
	check := func(seed int64) bool {
		inst := randomMixedInstance(seed)
		okAll := true
		count := 0
		Walk(inst, func(s *State) bool {
			count++
			if count > 30000 {
				t.Logf("seed %d: tree too large, pruning", seed)
				return false
			}
			if err := Validate(inst, s.Ops()); err != nil {
				t.Logf("seed %d: sequence %q invalid: %v", seed, s, err)
				okAll = false
				return false
			}
			if s.IsComplete() {
				if s.IsSuccessful() != s.Consistent() {
					t.Logf("seed %d: success/consistency mismatch at %q", seed, s)
					okAll = false
				}
				if s.IsFailing() && len(s.Extensions()) != 0 {
					t.Logf("seed %d: failing state with extensions at %q", seed, s)
					okAll = false
				}
			}
			return okAll
		})
		return okAll
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickEliminatedNeverReturns: along every root-to-leaf path of random
// instances, the violation sets at consecutive states never resurrect a
// violation that disappeared earlier (req2, checked globally).
func TestQuickEliminatedNeverReturns(t *testing.T) {
	check := func(seed int64) bool {
		inst := randomMixedInstance(seed)
		ok := true
		var dfs func(s *State, eliminated map[uint64]bool)
		count := 0
		dfs = func(s *State, eliminated map[uint64]bool) {
			count++
			if !ok || count > 30000 {
				return
			}
			for id := range eliminated {
				if s.Violations().Has(id) {
					t.Logf("seed %d: violation %d resurrected at %q", seed, id, s)
					ok = false
					return
				}
			}
			for _, op := range s.Extensions() {
				child := s.Child(op)
				nextElim := map[uint64]bool{}
				for id := range eliminated {
					nextElim[id] = true
				}
				for _, v := range s.Violations().Minus(child.Violations()) {
					nextElim[v.ID()] = true
				}
				dfs(child, nextElim)
			}
		}
		dfs(inst.Root(), map[uint64]bool{})
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestQuickSuccessfulResultsConsistent: results of successful sequences
// satisfy Σ and differ from D only in base facts.
func TestQuickSuccessfulResultsConsistent(t *testing.T) {
	check := func(seed int64) bool {
		inst := randomMixedInstance(seed)
		ok := true
		count := 0
		Walk(inst, func(s *State) bool {
			count++
			if count > 30000 {
				return false
			}
			if s.IsSuccessful() {
				if !inst.Sigma().Satisfied(s.Result()) {
					t.Logf("seed %d: successful state %q inconsistent", seed, s)
					ok = false
					return false
				}
				added, removed := s.Result().SymmetricDiff(inst.Initial())
				for _, fct := range append(added, removed...) {
					if !inst.Base().Contains(fct) {
						t.Logf("seed %d: repair changed non-base fact %s", seed, fct)
						ok = false
						return false
					}
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
