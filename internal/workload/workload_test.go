package workload

import (
	"math/big"
	"testing"

	"repro/internal/constraint"
	"repro/internal/practical"
)

func TestPreferencesGenerator(t *testing.T) {
	d, sigma := Preferences(PreferenceConfig{Products: 10, Prefs: 30, ConflictRate: 0.3, Seed: 1})
	if d.Size() < 30 {
		t.Errorf("generated %d facts, want ≥ 30", d.Size())
	}
	if sigma.Len() != 1 || sigma.All()[0].Kind() != constraint.DC {
		t.Error("expected the single asymmetry DC")
	}
	vs := constraint.FindViolations(d, sigma)
	if vs.Empty() {
		t.Error("expected conflicts at 30% conflict rate")
	}
}

func TestPreferencesDeterministic(t *testing.T) {
	a, _ := Preferences(PreferenceConfig{Products: 8, Prefs: 20, ConflictRate: 0.5, Seed: 42})
	b, _ := Preferences(PreferenceConfig{Products: 8, Prefs: 20, ConflictRate: 0.5, Seed: 42})
	if !a.Equal(b) {
		t.Error("same seed must reproduce the database")
	}
	c, _ := Preferences(PreferenceConfig{Products: 8, Prefs: 20, ConflictRate: 0.5, Seed: 43})
	if a.Equal(c) {
		t.Error("different seeds should (almost surely) differ")
	}
}

func TestKeyViolationsShape(t *testing.T) {
	d, sigma := KeyViolations(KeyConfig{Keys: 20, Violations: 5, Seed: 7})
	vs := constraint.FindViolations(d, sigma)
	// Each violating key yields 2 homomorphisms (y/z swapped).
	if vs.Len() != 10 {
		t.Errorf("violations = %d, want 10 (5 pairs × 2 orientations)", vs.Len())
	}
	if d.Size() < 20 || d.Size() > 25 {
		t.Errorf("size = %d, want 20..25", d.Size())
	}
	inv := vs.InvolvedFacts()
	if len(inv) != 10 {
		t.Errorf("involved facts = %d, want 10 (5 pairs)", len(inv))
	}
}

func TestKeyViolationsClamped(t *testing.T) {
	d, sigma := KeyViolations(KeyConfig{Keys: 3, Violations: 99, Seed: 1})
	vs := constraint.FindViolations(d, sigma)
	if vs.Len() != 6 {
		t.Errorf("violations = %d, want 6 (3 clamped pairs × 2)", vs.Len())
	}
	_ = d
}

func TestRandomTrustLevels(t *testing.T) {
	d, _ := KeyViolations(KeyConfig{Keys: 5, Violations: 2, Seed: 3})
	tr := RandomTrust(d, 10, 99)
	one := big.NewRat(1, 1)
	for _, f := range d.Facts() {
		level := tr.Level(f)
		if level.Sign() <= 0 || level.Cmp(one) > 0 {
			t.Errorf("trust(%s) = %s outside (0,1]", f, level.RatString())
		}
	}
}

func TestInclusionGenerator(t *testing.T) {
	d, sigma := Inclusion(InclusionConfig{Rows: 20, MissingRate: 0.5, Seed: 5})
	if sigma.Len() != 1 || sigma.All()[0].Kind() != constraint.TGD {
		t.Error("expected a single inclusion TGD")
	}
	vs := constraint.FindViolations(d, sigma)
	if vs.Empty() {
		t.Error("expected dangling R facts at 50% missing rate")
	}
	if vs.Len() >= 20 {
		t.Errorf("violations = %d, want < 20", vs.Len())
	}
}

func TestOrdersCatalog(t *testing.T) {
	oc := Orders(OrdersConfig{Orders: 100, Customers: 20, ViolationRate: 0.2, Seed: 11})
	if got := oc.Catalog.Count("orders"); got != 100+oc.ViolatingOrders {
		t.Errorf("orders rows = %d, want %d", got, 100+oc.ViolatingOrders)
	}
	if oc.ViolatingOrders == 0 {
		t.Error("expected some violations at rate 0.2")
	}
	orders, err := oc.Catalog.Table("orders")
	if err != nil {
		t.Fatal(err)
	}
	groups := practical.KeyGroups(oc.Catalog.DB(), orders.Pred, len(orders.Cols), oc.Catalog.Key("orders"))
	if len(groups) != oc.ViolatingOrders {
		t.Errorf("violating groups = %d, want %d", len(groups), oc.ViolatingOrders)
	}
	if got := oc.Catalog.Count("customers"); got != 20 {
		t.Errorf("customers = %d, want 20", got)
	}
}
