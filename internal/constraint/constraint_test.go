package constraint

import (
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/relation"
)

func v(n string) logic.Term                    { return logic.Var(n) }
func c(n string) logic.Term                    { return logic.Const(n) }
func at(p string, ts ...logic.Term) logic.Atom { return logic.NewAtom(p, ts...) }

// example1 builds D = {R(a,b), R(a,c), T(a,b)} and Σ = {σ, η} with
// σ = R(x,y) → ∃z S(x,y,z) and η = R(x,y), R(x,z) → y = z (Example 1).
func example1() (*relation.Database, *Set, *Constraint, *Constraint) {
	d := relation.FromFacts(
		relation.NewFact("R", "a", "b"),
		relation.NewFact("R", "a", "c"),
		relation.NewFact("T", "a", "b"),
	)
	sigma := MustTGD(
		[]logic.Atom{at("R", v("x"), v("y"))},
		[]logic.Atom{at("S", v("x"), v("y"), v("z"))},
	)
	eta := MustEGD(
		[]logic.Atom{at("R", v("x"), v("y")), at("R", v("x"), v("z"))},
		v("y"), v("z"),
	)
	set := NewSet(sigma, eta)
	return d, set, sigma, eta
}

func TestConstraintValidation(t *testing.T) {
	if _, err := NewTGD(nil, []logic.Atom{at("S", v("x"))}); err == nil {
		t.Error("empty TGD body must fail")
	}
	if _, err := NewTGD([]logic.Atom{at("R", v("x"))}, nil); err == nil {
		t.Error("empty TGD head must fail")
	}
	if _, err := NewEGD([]logic.Atom{at("R", v("x"), v("y"))}, v("x"), c("a")); err == nil {
		t.Error("EGD with a constant side must fail")
	}
	if _, err := NewEGD([]logic.Atom{at("R", v("x"), v("y"))}, v("x"), v("w")); err == nil {
		t.Error("EGD with a variable outside the body must fail")
	}
	if _, err := NewEGD([]logic.Atom{at("R", v("x"), v("y"))}, v("x"), v("x")); err == nil {
		t.Error("trivial EGD x = x must fail")
	}
	if _, err := NewDC(nil); err == nil {
		t.Error("empty DC body must fail")
	}
}

func TestKindsAndAccessors(t *testing.T) {
	_, _, sigma, eta := example1()
	if sigma.Kind() != TGD || eta.Kind() != EGD {
		t.Error("kinds wrong")
	}
	dc := MustDC([]logic.Atom{at("R", v("x"), v("x"))})
	if dc.Kind() != DC {
		t.Error("DC kind wrong")
	}
	if got := sigma.ExistentialVars(); len(got) != 1 || got[0].Name() != "z" {
		t.Errorf("ExistentialVars = %v, want [z]", got)
	}
	if got := eta.ExistentialVars(); got != nil {
		t.Errorf("EGD must have no existential vars, got %v", got)
	}
	l, r := eta.Equality()
	if l.Name() != "y" || r.Name() != "z" {
		t.Errorf("Equality = %v, %v", l, r)
	}
	if got := TGD.String(); got != "TGD" {
		t.Errorf("Kind.String = %q", got)
	}
}

func TestSatisfiedTGD(t *testing.T) {
	_, _, sigma, _ := example1()
	d := relation.FromFacts(relation.NewFact("R", "a", "b"))
	if sigma.Satisfied(d) {
		t.Error("R(a,b) without S must violate σ")
	}
	d.Insert(relation.NewFact("S", "a", "b", "q"))
	if !sigma.Satisfied(d) {
		t.Error("head witness present, σ must hold")
	}
}

func TestSatisfiedEGD(t *testing.T) {
	_, _, _, eta := example1()
	d := relation.FromFacts(relation.NewFact("R", "a", "b"))
	if !eta.Satisfied(d) {
		t.Error("single fact cannot violate the key")
	}
	d.Insert(relation.NewFact("R", "a", "c"))
	if eta.Satisfied(d) {
		t.Error("two values for key a must violate η")
	}
	d2 := relation.FromFacts(relation.NewFact("R", "a", "b"), relation.NewFact("b", "x", "y"))
	_ = d2
}

func TestSatisfiedDC(t *testing.T) {
	dc := MustDC([]logic.Atom{at("Pref", v("x"), v("y")), at("Pref", v("y"), v("x"))})
	d := relation.FromFacts(relation.NewFact("Pref", "a", "b"))
	if !dc.Satisfied(d) {
		t.Error("no symmetric pair yet")
	}
	d.Insert(relation.NewFact("Pref", "b", "a"))
	if dc.Satisfied(d) {
		t.Error("symmetric pair must violate the DC")
	}
}

func TestFindViolationsExample1(t *testing.T) {
	d, set, sigma, eta := example1()
	vs := FindViolations(d, set)
	// σ is violated by h1 = {x→a,y→b} and {x→a,y→c};
	// η by h2 = {x→a,y→b,z→c} and h3 = {x→a,y→c,z→b}.
	if vs.Len() != 4 {
		t.Fatalf("found %d violations, want 4: %v", vs.Len(), vs.Keys())
	}
	bySigma, byEta := 0, 0
	for _, viol := range vs.All() {
		switch viol.Constraint {
		case sigma:
			bySigma++
		case eta:
			byEta++
			body := viol.BodyFacts()
			if len(body) != 2 {
				t.Errorf("EGD violation body has %d facts, want 2", len(body))
			}
		}
	}
	if bySigma != 2 || byEta != 2 {
		t.Errorf("violations: %d for σ, %d for η; want 2 and 2", bySigma, byEta)
	}
}

func TestViolationsEmptyOnConsistent(t *testing.T) {
	_, set, _, _ := example1()
	d := relation.FromFacts(
		relation.NewFact("R", "a", "b"),
		relation.NewFact("S", "a", "b", "z"),
		relation.NewFact("T", "a", "b"),
	)
	vs := FindViolations(d, set)
	if !vs.Empty() {
		t.Errorf("consistent database has violations: %v", vs.Keys())
	}
	if !set.Satisfied(d) {
		t.Error("Satisfied must agree with empty violations")
	}
}

func TestViolationsMinus(t *testing.T) {
	d, set, _, _ := example1()
	before := FindViolations(d, set)
	d2 := d.Clone()
	d2.Delete(relation.NewFact("R", "a", "c"))
	after := FindViolations(d2, set)
	gone := before.Minus(after)
	// Deleting R(a,c) removes both EGD violations and σ's {x→a,y→c}.
	if len(gone) != 3 {
		t.Errorf("eliminated %d violations, want 3", len(gone))
	}
	if len(after.Minus(before)) != 0 {
		t.Error("no new violations expected")
	}
}

func TestInvolvedFacts(t *testing.T) {
	d, set, _, _ := example1()
	vs := FindViolations(d, set)
	inv := vs.InvolvedFacts()
	// R(a,b), R(a,c) are involved; T(a,b) is not.
	if len(inv) != 2 {
		t.Fatalf("involved facts = %v, want 2", inv)
	}
	for _, f := range inv {
		if f.PredName() != "R" {
			t.Errorf("unexpected involved fact %s", f)
		}
	}
}

func TestViolationKeyStable(t *testing.T) {
	d, set, _, _ := example1()
	vs1 := FindViolations(d, set)
	vs2 := FindViolations(d.Clone(), set)
	k1 := strings.Join(vs1.Keys(), ";")
	k2 := strings.Join(vs2.Keys(), ";")
	if k1 != k2 {
		t.Errorf("violation keys unstable:\n%s\n%s", k1, k2)
	}
}

func TestSetBase(t *testing.T) {
	d, set, _, _ := example1()
	base, err := set.Base(d)
	if err != nil {
		t.Fatalf("Base: %v", err)
	}
	dom := base.Dom()
	if strings.Join(dom, ",") != "a,b,c" {
		t.Errorf("base dom = %v", dom)
	}
	// S/3 comes from the TGD head even though D has no S facts.
	if _, ok := base.Schema().Arity("S"); !ok {
		t.Error("schema must include S from the constraint head")
	}
	if !base.Contains(relation.NewFact("S", "a", "b", "c")) {
		t.Error("S(a,b,c) must be in the base")
	}
}

func TestSetBaseWithConstraintConstants(t *testing.T) {
	d := relation.FromFacts(relation.NewFact("R", "a", "b"))
	tgd := MustTGD(
		[]logic.Atom{at("R", v("x"), v("y"))},
		[]logic.Atom{at("S", v("x"), c("special"))},
	)
	set := NewSet(tgd)
	base, err := set.Base(d)
	if err != nil {
		t.Fatal(err)
	}
	if !base.HasConst("special") {
		t.Error("constraint constants must be in the base domain")
	}
}

func TestConstraintString(t *testing.T) {
	_, _, sigma, eta := example1()
	if got := sigma.String(); got != "R(x, y) -> exists z: S(x, y, z)" {
		t.Errorf("TGD String = %q", got)
	}
	if got := eta.String(); got != "R(x, y), R(x, z) -> y = z" {
		t.Errorf("EGD String = %q", got)
	}
	dc := MustDC([]logic.Atom{at("R", v("x"), v("x"))})
	if got := dc.String(); got != "R(x, x) -> false" {
		t.Errorf("DC String = %q", got)
	}
}

func TestSetIDsAndLookup(t *testing.T) {
	_, set, sigma, eta := example1()
	if sigma.ID() == "" || eta.ID() == "" || sigma.ID() == eta.ID() {
		t.Error("set must assign distinct ids")
	}
	got, ok := set.ByID(eta.ID())
	if !ok || got != eta {
		t.Error("ByID lookup failed")
	}
	if set.Len() != 2 {
		t.Errorf("Len = %d", set.Len())
	}
}

func TestTGDMultiAtomHead(t *testing.T) {
	// Multi-head TGD requires both head atoms (Proposition 1 remark).
	tgd := MustTGD(
		[]logic.Atom{at("R", v("x"))},
		[]logic.Atom{at("S", v("x"), v("z")), at("U", v("z"))},
	)
	d := relation.FromFacts(relation.NewFact("R", "a"), relation.NewFact("S", "a", "q"))
	if tgd.Satisfied(d) {
		t.Error("S(a,q) alone does not satisfy the two-atom head (no U(q))")
	}
	d.Insert(relation.NewFact("U", "q"))
	if !tgd.Satisfied(d) {
		t.Error("both head atoms present; TGD must hold")
	}
}

// TestViolationKeyRefreshedOnSetAdd: a violation interned before its
// constraint joins a Set must still render with the final constraint id —
// Set.Add refreshes the cached canonical keys.
func TestViolationKeyRefreshedOnSetAdd(t *testing.T) {
	x, y := logic.Var("x"), logic.Var("y")
	dc := MustDC([]logic.Atom{logic.NewAtom("Early", x, y)})
	h := logic.NewSubst()
	h[x.Sym()] = logic.Const("a").Sym()
	h[y.Sym()] = logic.Const("b").Sym()
	early := NewViolation(dc, h)
	if got := early.Key(); got[0] != '|' {
		t.Fatalf("pre-set key = %q, want empty constraint id", got)
	}
	NewSet(dc)
	if got := NewViolation(dc, h).Key(); got != dc.ID()+"|"+early.H.Key() {
		t.Errorf("post-add key = %q, want %q", got, dc.ID()+"|"+early.H.Key())
	}
	if got := early.Key(); got != dc.ID()+"|"+early.H.Key() {
		t.Errorf("previously interned violation key = %q, want refreshed %q", got, dc.ID()+"|"+early.H.Key())
	}
}
