package logic

import (
	"testing"
	"testing/quick"

	"repro/internal/intern"
)

// sym interns a test identifier.
func sym(s string) intern.Sym { return intern.S(s) }

// sub builds a substitution from alternating variable/constant names.
func sub(kv ...string) Subst {
	s := NewSubst()
	for i := 0; i < len(kv); i += 2 {
		s[sym(kv[i])] = sym(kv[i+1])
	}
	return s
}

func TestSubstBind(t *testing.T) {
	s := NewSubst()
	if !s.Bind(sym("x"), sym("a")) {
		t.Fatal("fresh bind must succeed")
	}
	if !s.Bind(sym("x"), sym("a")) {
		t.Error("re-bind to the same constant must succeed")
	}
	if s.Bind(sym("x"), sym("b")) {
		t.Error("re-bind to a different constant must fail")
	}
	if c, ok := s.Lookup(sym("x")); !ok || c != sym("a") {
		t.Errorf("Lookup(x) = %q, %v", c, ok)
	}
	if _, ok := s.Lookup(sym("y")); ok {
		t.Error("unbound variable must not be found")
	}
	if c, ok := s.LookupName("x"); !ok || c != "a" {
		t.Errorf("LookupName(x) = %q, %v", c, ok)
	}
}

func TestSubstApply(t *testing.T) {
	s := sub("x", "a")
	if got := s.ApplyTerm(Var("x")); got != Const("a") {
		t.Errorf("ApplyTerm(x) = %v", got)
	}
	if got := s.ApplyTerm(Var("y")); got != Var("y") {
		t.Errorf("unbound variable must pass through, got %v", got)
	}
	if got := s.ApplyTerm(Const("x")); got != Const("x") {
		t.Errorf("constants are fixed, got %v", got)
	}
	a := s.ApplyAtom(NewAtom("R", Var("x"), Var("y"), Const("c")))
	want := NewAtom("R", Const("a"), Var("y"), Const("c"))
	if !a.Equal(want) {
		t.Errorf("ApplyAtom = %v, want %v", a, want)
	}
}

func TestSubstCloneIndependence(t *testing.T) {
	s := sub("x", "a")
	c := s.Clone()
	c[sym("y")] = sym("b")
	if _, ok := s.Lookup(sym("y")); ok {
		t.Error("mutating the clone must not affect the original")
	}
}

func TestSubstGrounds(t *testing.T) {
	atoms := []Atom{NewAtom("R", Var("x"), Var("y"))}
	s := sub("x", "a")
	if s.Grounds(atoms) {
		t.Error("partially bound substitution must not ground the atoms")
	}
	s[sym("y")] = sym("b")
	if !s.Grounds(atoms) {
		t.Error("fully bound substitution must ground the atoms")
	}
}

func TestSubstRestrictAndExtends(t *testing.T) {
	s := sub("x", "a", "y", "b", "z", "c")
	r := s.Restrict([]Term{Var("x"), Var("z"), Var("missing")})
	if len(r) != 2 || r[sym("x")] != sym("a") || r[sym("z")] != sym("c") {
		t.Errorf("Restrict = %v", r)
	}
	if !s.Extends(r) {
		t.Error("s must extend its own restriction")
	}
	if r.Extends(s) {
		t.Error("a restriction must not extend the full substitution")
	}
}

func TestSubstKeyCanonical(t *testing.T) {
	a := sub("x", "1", "y", "2")
	b := sub("y", "2", "x", "1")
	if a.Key() != b.Key() {
		t.Errorf("keys differ for equal substitutions: %q vs %q", a.Key(), b.Key())
	}
	c := sub("x", "1", "y", "3")
	if a.Key() == c.Key() {
		t.Error("different substitutions must have different keys")
	}
	if NewSubst().Key() != "" {
		t.Error("empty substitution key must be empty")
	}
}

func TestSubstString(t *testing.T) {
	s := sub("y", "b", "x", "a")
	if got := s.String(); got != "{x -> a, y -> b}" {
		t.Errorf("String = %q", got)
	}
}

func TestSubstEqual(t *testing.T) {
	a := sub("x", "1")
	if !a.Equal(sub("x", "1")) {
		t.Error("equal substitutions")
	}
	if a.Equal(sub("x", "2")) || a.Equal(sub("x", "1", "y", "2")) {
		t.Error("unequal substitutions reported equal")
	}
}

// Property: Key is injective over small random substitutions.
func TestSubstKeyInjective(t *testing.T) {
	f := func(k1, v1, k2, v2 string) bool {
		a := sub(k1, v1)
		b := sub(k2, v2)
		if a.Equal(b) {
			return a.Key() == b.Key()
		}
		return a.Key() != b.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ApplyAtoms preserves length and predicate names.
func TestApplyAtomsShape(t *testing.T) {
	f := func(pred string, vars []string) bool {
		if pred == "" {
			pred = "R"
		}
		var args []Term
		s := NewSubst()
		for i, v := range vars {
			if v == "" {
				continue
			}
			args = append(args, Var(v))
			if i%2 == 0 {
				s[sym(v)] = sym("c")
			}
		}
		atoms := []Atom{NewAtom(pred, args...)}
		out := s.ApplyAtoms(atoms)
		return len(out) == 1 && out[0].PredName() == pred && len(out[0].Args) == len(args)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
