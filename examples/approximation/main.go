// Approximation demonstrates the point of Theorem 9 at a scale where exact
// OCQA is hopeless: a relation with 40 key conflicts has 3^40 ≈ 10^19
// repairing sequences, yet the additive-error sampler answers in
// milliseconds with an explicit (ε, δ) guarantee. The same computation is
// then repeated through the Section 5 practical scheme (R − R_del query
// rewriting), running over the very same interned database — the chain
// walks and the relational rounds now share one substrate.
//
// Run with: go run ./examples/approximation
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/fo"
	"repro/internal/generators"
	"repro/internal/logic"
	"repro/internal/plan"
	"repro/internal/practical"
	"repro/internal/prob"
	"repro/internal/repair"
	"repro/internal/sampling"
	"repro/internal/workload"
)

func main() {
	const (
		keys       = 200
		violations = 40
		eps        = 0.05
		delta      = 0.05
	)

	// Chain-level view: R(k, v) with 40 conflicting keys under the key EGD.
	d, sigma := workload.KeyViolations(workload.KeyConfig{
		Keys: keys, Violations: violations, Seed: 42,
	})
	inst, err := repair.NewInstance(d, sigma)
	if err != nil {
		log.Fatal(err)
	}
	n, err := prob.HoeffdingSamples(eps, delta)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d facts, %d key conflicts\n", d.Size(), violations)
	fmt.Printf("exact OCQA would enumerate ~3^%d ≈ 10^%d repairing sequences — infeasible\n",
		violations, violations/2)
	fmt.Printf("sampling instead: n = %d walks for ε = %g, δ = %g\n\n", n, eps, delta)

	// Query: which keys survive with a value?
	x, y := logic.Var("x"), logic.Var("y")
	q := fo.MustQuery("HasValue", []logic.Term{x},
		fo.Exists{Vars: []logic.Term{y}, F: fo.Atom{A: logic.NewAtom("R", x, y)}})

	start := time.Now()
	est := &sampling.Estimator{Inst: inst, Gen: generators.Uniform{}, Seed: 7, Workers: 4}
	run, err := est.EstimateAnswers(q, eps, delta)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	// Every key keeps at least one tuple under the uniform chain (the
	// "delete both" branch also exists, so conflicted keys survive with
	// probability < 1). Report the distribution of estimates.
	ones, partial := 0, 0
	var minP = 1.0
	for _, e := range run.Estimates {
		if e.P >= 1 {
			ones++
		} else {
			partial++
			if e.P < minP {
				minP = e.P
			}
		}
	}
	fmt.Printf("sampled %d walks in %s (%d tuples estimated)\n", run.N, elapsed.Round(time.Millisecond), len(run.Estimates))
	fmt.Printf("  certain keys (P = 1): %d (the %d conflict-free keys)\n", ones, keys-violations)
	fmt.Printf("  uncertain keys:       %d (min estimate %.3f)\n\n", partial, minP)

	// The same question through the Section 5 practical scheme: keep one
	// tuple per violating group, evaluate the query over the copy-on-write
	// repair R − R_del, repeat. The catalog is a schema view over the SAME
	// interned database the chain walks used — no copy, one data plane.
	cat := plan.NewCatalogOn(d)
	cat.MustAddTable("R", "k", "v")
	if err := cat.DeclareKey("R", "k"); err != nil {
		log.Fatal(err)
	}
	qplan := plan.Distinct{Input: plan.Project{Input: plan.Scan{Table: "R"}, Cols: []string{"k"}}}

	start = time.Now()
	runner := &practical.Runner{Catalog: cat, Seed: 7, Workers: 4}
	res, err := runner.RunWithGuarantee(qplan, eps, delta)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("practical scheme (%d rewritten-query rounds in %s, 4 workers):\n", res.N, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  every key appears with frequency 1 under keep-one repairs: %v\n",
		allOnes(res))
	fmt.Println("\nnote: the practical scheme keeps exactly one tuple per group")
	fmt.Println("(classical key repairs), so keys always survive; the chain-level")
	fmt.Println("walk also explores the 'delete both' branch of Definition 3, which")
	fmt.Println("is why its conflicted keys have P < 1.")
}

func allOnes(res *practical.Result) bool {
	for _, tf := range res.Tuples {
		if tf.P < 1 {
			return false
		}
	}
	return true
}
