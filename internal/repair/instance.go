// Package repair implements repairing sequences of operations
// (Definition 4 of the paper): sequences of justified operations subject to
// req1 (every step eliminates a violation), req2 (eliminated violations
// never reappear), no-cancellation (a fact added is never removed and vice
// versa) and global justification of additions. It provides incremental
// state tracking for tree exploration, a full-tree walker, and an
// independent sequence validator used by the test suite.
package repair

import (
	"fmt"
	"sync"

	"repro/internal/constraint"
	"repro/internal/ops"
	"repro/internal/relation"
)

// Options tunes the repairing operation space.
type Options struct {
	// NullInsertions switches TGD repairs to the null-based insertions of
	// Section 6 ("Null Values"): instead of grounding existential head
	// variables over every base constant (|dom|^|z̄| candidate operations),
	// each TGD violation gets a single canonical insertion whose
	// existential positions carry fresh labeled nulls. This is an
	// extension beyond Definition 1 (null facts live outside B(D,Σ)) and
	// trades the full Definition 3 minimality comparison against grounded
	// candidates for a polynomial operation space.
	NullInsertions bool
}

// Instance bundles the fixed context of a repairing process: the initial
// (possibly inconsistent) database D, the constraint set Σ, and the base
// B(D,Σ) from which operations draw their facts.
type Instance struct {
	initial *relation.Database
	sigma   *constraint.Set
	base    *relation.Base
	opts    Options

	// delOps caches the justified deletions of a violation, keyed by its
	// body image: they are a pure function of the body facts and recur at
	// every state where the violation survives. Safe for concurrent
	// walkers.
	delOpsMu sync.Mutex
	delOps   map[string][]ops.Op
}

// NewInstance builds the context for repairing d under sigma. The database
// is cloned; later mutations of d do not affect the instance.
func NewInstance(d *relation.Database, sigma *constraint.Set) (*Instance, error) {
	return NewInstanceOpts(d, sigma, Options{})
}

// NewInstanceOpts is NewInstance with explicit options.
func NewInstanceOpts(d *relation.Database, sigma *constraint.Set, opts Options) (*Instance, error) {
	base, err := sigma.Base(d)
	if err != nil {
		return nil, fmt.Errorf("building base B(D,Σ): %w", err)
	}
	return &Instance{
		initial: d.Clone(),
		sigma:   sigma,
		base:    base,
		opts:    opts,
		delOps:  map[string][]ops.Op{},
	}, nil
}

// MustInstance is NewInstance that panics on error.
func MustInstance(d *relation.Database, sigma *constraint.Set) *Instance {
	inst, err := NewInstance(d, sigma)
	if err != nil {
		panic(err)
	}
	return inst
}

// Initial returns (a private copy of) the initial database; callers must
// not modify it.
func (in *Instance) Initial() *relation.Database { return in.initial }

// Sigma returns the constraint set.
func (in *Instance) Sigma() *constraint.Set { return in.sigma }

// Base returns B(D,Σ).
func (in *Instance) Base() *relation.Base { return in.base }

// Opts returns the instance options.
func (in *Instance) Opts() Options { return in.opts }

// Consistent reports whether the initial database already satisfies Σ.
func (in *Instance) Consistent() bool { return in.sigma.Satisfied(in.initial) }

// justifiedDeletions returns the cached justified deletions of a
// violation, computing and caching them on first use.
func (in *Instance) justifiedDeletions(v constraint.Violation) []ops.Op {
	key := v.BodyKey()
	in.delOpsMu.Lock()
	cached, ok := in.delOps[key]
	if !ok {
		cached = ops.JustifiedDeletions(v)
		in.delOps[key] = cached
	}
	in.delOpsMu.Unlock()
	return cached
}

// Root returns the state of the empty repairing sequence ε.
func (in *Instance) Root() *State {
	db := in.initial.Clone()
	return &State{
		inst:       in,
		db:         db,
		violations: constraint.FindViolations(db, in.sigma),
		eliminated: map[string]bool{},
		added:      map[string]bool{},
		removed:    map[string]bool{},
	}
}
