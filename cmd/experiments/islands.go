package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/generators"
	"repro/internal/logic"
	"repro/internal/markov"
	"repro/internal/prob"
	"repro/internal/relation"
	"repro/internal/repair"
	"repro/internal/workload"
)

// E18 exercises the ROADMAP's "million-fact exact answering" target: the
// parallel, structurally-memoized factored engine on a database of
// 1,000,000 E facts split into 100,000 ten-fact conflict islands. The
// monolithic chain of this instance has on the order of 10^500000 complete
// sequences; the factored engine repairs each island independently,
// explores only the distinct island shapes (99% of the islands are
// isomorphic up to constant renaming and are served by the structural
// cache), and still reports exact big.Rat probabilities.
func init() {
	register("E18", "extension: exact CP at million-fact scale (parallel + memoized factored engine)", func() error {
		cfg := workload.IslandsConfig{
			Islands:        100_000,
			FactsPerIsland: 10,
			IsoRatio:       0.99,
			Seed:           18,
		}
		if fullScale {
			cfg.Islands = 200_000
		}
		fmt.Printf("  generating %d islands × %d facts (isomorphic ratio %.2f)...\n",
			cfg.Islands, cfg.FactsPerIsland, cfg.IsoRatio)
		start := time.Now()
		d, sigma := workload.Islands(cfg)
		inst, err := repair.NewInstance(d, sigma)
		if err != nil {
			return err
		}
		fmt.Printf("  built %d facts in %s\n", d.Size(), time.Since(start).Round(time.Millisecond))

		start = time.Now()
		fac, err := core.ComputeFactored(inst, generators.Uniform{}, markov.ExploreOptions{Workers: 8})
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		hits, misses := fac.CacheHits, fac.CacheMisses
		fmt.Printf("  factored semantics in %s: %d components, %d untouched facts\n",
			elapsed.Round(time.Millisecond), len(fac.Components), fac.Untouched.Size())
		fmt.Printf("  structural cache: %d explorations, %d renamings (hit ratio %.4f)\n",
			misses, hits, float64(hits)/float64(hits+misses))
		fmt.Printf("  distinct repairs: ~10^%d (exact product of per-island repair counts)\n",
			len(fac.NumRepairs().String())-1)

		// Exact conditional probabilities of atomic queries, straight off
		// the per-component marginals — no sampling, no enumeration.
		x, y := logic.Var("X"), logic.Var("Y")
		q := fo.MustQuery("Q", []logic.Term{x, y}, fo.Atom{A: logic.NewAtom("E", x, y)})
		end := relation.NewFact("E", "i00000000_n000", "i00000000_n001")
		mid := relation.NewFact("E", "i00000000_n004", "i00000000_n005")
		for _, target := range []relation.Fact{end, mid} {
			cp, err := fac.CP(q, []string{target.Args()[0].String(), target.Args()[1].String()})
			if err != nil {
				return err
			}
			fmt.Printf("  exact CP(%s) = %s ≈ %.6f\n", target, cp.RatString(), prob.Float(cp))
		}
		fmt.Println("  the end fact of a 10-chain survives more repairs than a middle fact;")
		fmt.Println("  both probabilities are exact rationals computed in O(island) time.")
		return nil
	})
}
