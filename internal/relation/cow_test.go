package relation

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/intern"
	"repro/internal/logic"
)

// TestCOWDatabaseShadowModel drives a copy-on-write database through long
// random interleavings of inserts, deletes, clones, and seals, checking
// every observable (membership, size, per-predicate indexes, domain, key)
// against a plain map-based shadow model. Clones fork the shadow too, so
// delta independence between parent and child is exercised throughout.
func TestCOWDatabaseShadowModel(t *testing.T) {
	preds := []string{"R", "S", "T"}
	consts := []string{"a", "b", "c", "d", "e"}
	randomFact := func(rng *rand.Rand) Fact {
		p := preds[rng.Intn(len(preds))]
		if p == "S" {
			return NewFact(p, consts[rng.Intn(len(consts))])
		}
		return NewFact(p, consts[rng.Intn(len(consts))], consts[rng.Intn(len(consts))])
	}

	type pair struct {
		db     *Database
		shadow map[Fact]bool
	}
	checkPair := func(seed int64, step int, pr pair) error {
		if pr.db.Size() != len(pr.shadow) {
			return fmt.Errorf("size = %d, want %d", pr.db.Size(), len(pr.shadow))
		}
		byPred := map[string][]Fact{}
		domSet := map[intern.Sym]bool{}
		for f := range pr.shadow {
			if !pr.db.Contains(f) {
				return fmt.Errorf("missing fact %s", f)
			}
			byPred[f.PredName()] = append(byPred[f.PredName()], f)
			for _, c := range f.Args() {
				domSet[c] = true
			}
		}
		for _, p := range preds {
			got := pr.db.FactsByPred(intern.S(p))
			if len(got) != len(byPred[p]) {
				return fmt.Errorf("FactsByPred(%s) has %d facts, want %d", p, len(got), len(byPred[p]))
			}
			for _, f := range got {
				if !pr.shadow[f] {
					return fmt.Errorf("FactsByPred(%s) returned phantom fact %s", p, f)
				}
			}
			if got, want := pr.db.PredCount(intern.S(p)), len(byPred[p]); got != want {
				return fmt.Errorf("PredCount(%s) = %d, want %d", p, got, want)
			}
			// The argument indexes (snapshot buckets ∪ delta) must agree
			// with a filtered scan of the shadow at every position.
			for pos := 0; pos < 2; pos++ {
				for _, c := range consts {
					sym := intern.S(c)
					want := 0
					for f := range pr.shadow {
						if f.PredName() == p && pos < f.Arity() && f.Arg(pos) == sym {
							want++
						}
					}
					if got := pr.db.CountAt(intern.S(p), pos, sym); got != want {
						return fmt.Errorf("CountAt(%s, %d, %s) = %d, want %d", p, pos, c, got, want)
					}
				}
			}
		}
		if got := pr.db.DomSyms(); len(got) != len(domSet) {
			return fmt.Errorf("dom has %d constants, want %d", len(got), len(domSet))
		}
		for _, c := range pr.db.DomSyms() {
			if !domSet[c] {
				return fmt.Errorf("phantom domain constant %s", c)
			}
			if !pr.db.HasConst(c) {
				return fmt.Errorf("HasConst(%s) = false for domain constant", c)
			}
		}
		// Key equals the key of a freshly built database with the same
		// contents (canonical encoding is content-only).
		var fs []Fact
		for f := range pr.shadow {
			fs = append(fs, f)
		}
		if want := FromFacts(fs...).Key(); pr.db.Key() != want {
			return fmt.Errorf("key mismatch after %d steps", step)
		}
		return nil
	}

	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pairs := []pair{{db: NewDatabase(), shadow: map[Fact]bool{}}}
		for step := 0; step < 400; step++ {
			pr := pairs[rng.Intn(len(pairs))]
			switch op := rng.Intn(10); {
			case op < 5: // insert
				f := randomFact(rng)
				changed := pr.db.Insert(f)
				if changed == pr.shadow[f] {
					t.Fatalf("seed %d step %d: Insert(%s) reported %v with shadow %v",
						seed, step, f, changed, pr.shadow[f])
				}
				pr.shadow[f] = true
			case op < 8: // delete
				f := randomFact(rng)
				changed := pr.db.Delete(f)
				if changed != pr.shadow[f] {
					t.Fatalf("seed %d step %d: Delete(%s) reported %v with shadow %v",
						seed, step, f, changed, pr.shadow[f])
				}
				delete(pr.shadow, f)
			case op < 9: // clone (bounded population)
				if len(pairs) < 6 {
					shadow := make(map[Fact]bool, len(pr.shadow))
					for f := range pr.shadow {
						shadow[f] = true
					}
					pairs = append(pairs, pair{db: pr.db.Clone(), shadow: shadow})
				}
			default: // seal
				pr.db.Seal()
			}
			if err := checkPair(seed, step, pr); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
		}
		for _, pr := range pairs {
			if err := checkPair(seed, -1, pr); err != nil {
				t.Fatalf("seed %d final: %v", seed, err)
			}
		}
	}
}

// naiveHoms is the from-scratch reference for the indexed homomorphism
// search: plain backtracking in the given atom order over a full scan of
// the fact list — no indexes, no join planning, no delta/snapshot logic.
func naiveHoms(atoms []logic.Atom, facts []Fact, base logic.Subst) []logic.Subst {
	var out []logic.Subst
	var rec func(i int, cur logic.Subst)
	rec = func(i int, cur logic.Subst) {
		if i == len(atoms) {
			out = append(out, cur.Clone())
			return
		}
		a := atoms[i]
		for _, f := range facts {
			if f.Pred() != a.Pred || f.Arity() != len(a.Args) {
				continue
			}
			next := cur.Clone()
			ok := true
			for j, t := range a.Args {
				c := f.Arg(j)
				if t.IsConst() {
					if t.Sym() != c {
						ok = false
						break
					}
					continue
				}
				if !next.Bind(t.Sym(), c) {
					ok = false
					break
				}
			}
			if ok {
				rec(i+1, next)
			}
		}
	}
	rec(0, base.Clone())
	return out
}

// homKeys canonicalizes a homomorphism list for comparison.
func homKeys(hs []logic.Subst) string {
	keys := make([]string, len(hs))
	for i, h := range hs {
		keys[i] = h.Key()
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

// TestIndexedHomSearchMatchesNaiveScan drives copy-on-write databases
// through random interleavings of inserts, deletes, clones, and seals and
// checks, at every step, that the indexed ForEachHom enumerates exactly the
// homomorphisms a from-scratch unindexed scan of the shadow fact set finds —
// for joins, constants, repeated variables, and pre-bound base
// substitutions alike.
func TestIndexedHomSearchMatchesNaiveScan(t *testing.T) {
	x, y, z := logic.Var("X"), logic.Var("Y"), logic.Var("Z")
	queries := [][]logic.Atom{
		{logic.NewAtom("R", x, y)},
		{logic.NewAtom("R", x, y), logic.NewAtom("R", y, z)},
		{logic.NewAtom("R", x, x)},
		{logic.NewAtom("R", logic.Const("a"), y)},
		{logic.NewAtom("R", x, y), logic.NewAtom("S", y)},
		{logic.NewAtom("R", x, y), logic.NewAtom("R", x, z)},
		{logic.NewAtom("S", x), logic.NewAtom("T", x, y), logic.NewAtom("R", y, logic.Const("b"))},
	}
	bases := []logic.Subst{
		nil,
		{intern.S("X"): intern.S("a")},
		{intern.S("Y"): intern.S("c")},
	}

	preds := []string{"R", "S", "T"}
	consts := []string{"a", "b", "c", "d"}
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		randomFact := func() Fact {
			p := preds[rng.Intn(len(preds))]
			if p == "S" {
				return NewFact(p, consts[rng.Intn(len(consts))])
			}
			return NewFact(p, consts[rng.Intn(len(consts))], consts[rng.Intn(len(consts))])
		}
		type pair struct {
			db     *Database
			shadow map[Fact]bool
		}
		pairs := []pair{{db: NewDatabase(), shadow: map[Fact]bool{}}}
		for step := 0; step < 250; step++ {
			pr := pairs[rng.Intn(len(pairs))]
			switch op := rng.Intn(10); {
			case op < 5:
				f := randomFact()
				pr.db.Insert(f)
				pr.shadow[f] = true
			case op < 8:
				f := randomFact()
				pr.db.Delete(f)
				delete(pr.shadow, f)
			case op < 9:
				if len(pairs) < 5 {
					shadow := make(map[Fact]bool, len(pr.shadow))
					for f := range pr.shadow {
						shadow[f] = true
					}
					pairs = append(pairs, pair{db: pr.db.Clone(), shadow: shadow})
				}
			default:
				pr.db.Seal()
			}

			facts := make([]Fact, 0, len(pr.shadow))
			for f := range pr.shadow {
				facts = append(facts, f)
			}
			qi := rng.Intn(len(queries))
			base := bases[rng.Intn(len(bases))]
			if base == nil {
				base = logic.NewSubst()
			}
			got := homKeys(FindHoms(queries[qi], pr.db, base))
			want := homKeys(naiveHoms(queries[qi], facts, base))
			if got != want {
				t.Fatalf("seed %d step %d query %d: indexed homs %q, want %q",
					seed, step, qi, got, want)
			}
		}
	}
}

// TestAutoSealKeepsBulkLoadingFlat: bulk construction folds deltas into
// snapshots, so a database built by pure insertion ends up with a small
// delta and correct content.
func TestAutoSealKeepsBulkLoadingFlat(t *testing.T) {
	d := NewDatabase()
	n := 4 * autoSealFloor
	for i := 0; i < n; i++ {
		d.Insert(NewFact("R", fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)))
	}
	if d.Size() != n {
		t.Fatalf("size = %d, want %d", d.Size(), n)
	}
	if d.DeltaSize() >= n {
		t.Fatalf("delta never sealed: %d facts still in delta", d.DeltaSize())
	}
	if got := len(d.FactsByPred(intern.S("R"))); got != n {
		t.Fatalf("index has %d facts, want %d", got, n)
	}
}

// TestSealedCloneIsCheapAndIndependent: clones of a sealed database share
// the snapshot but never observe each other's writes.
func TestSealedCloneIsCheapAndIndependent(t *testing.T) {
	d := FromFacts(NewFact("R", "a"), NewFact("R", "b"))
	d.Seal()
	if d.DeltaSize() != 0 {
		t.Fatalf("sealed database has delta %d", d.DeltaSize())
	}
	c1, c2 := d.Clone(), d.Clone()
	c1.Delete(NewFact("R", "a"))
	c2.Insert(NewFact("R", "c"))
	if !d.Contains(NewFact("R", "a")) || d.Contains(NewFact("R", "c")) {
		t.Error("writes to clones leaked into the sealed parent")
	}
	if c1.Contains(NewFact("R", "c")) || !c2.Contains(NewFact("R", "a")) {
		t.Error("writes leaked between sibling clones")
	}
	if got := strings.Join(c1.Dom(), ","); got != "b" {
		t.Errorf("c1 dom = %q, want b", got)
	}
}
