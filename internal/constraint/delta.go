package constraint

import (
	"slices"

	"repro/internal/intern"
	"repro/internal/logic"
	"repro/internal/relation"
)

// This file implements incremental maintenance of violation sets: given
// V(D,Σ) and an update that inserted or deleted a set of facts, compute
// V(D',Σ) without re-running homomorphism search for unaffected
// constraints. This realizes the "localization of repairs" optimization
// sketched in Section 6 of the paper and is the workhorse behind fast
// chain walks; FindViolations remains the reference implementation and the
// test suite checks the two agree on random transitions.
//
// Correctness cases:
//
//   - EGD/DC + deletion: a violation disappears iff its body loses a fact;
//     no violation can appear. Pure filtering, no search.
//   - EGD/DC + insertion: existing violations persist (their bodies are
//     untouched); new violations must map at least one body atom to an
//     inserted fact (semi-naive delta search).
//   - TGD: insertions can both create violations (new body matches) and
//     satisfy old ones (new head witnesses); deletions can both remove
//     violations (destroyed bodies) and create them (destroyed witnesses).
//     TGDs whose body or head mentions a changed predicate are recomputed
//     in full.
//   - Constraints mentioning none of the changed predicates keep their
//     violations verbatim.

// changeSet is the interned view of an update's changed facts. Updates
// touch one operation's worth of facts, so tiny slices with linear scans
// beat maps here.
type changeSet struct {
	preds []intern.Sym
	facts []relation.Fact
}

func newChangeSet(changed []relation.Fact, buf []intern.Sym) changeSet {
	// The fact slice is aliased, not copied: callers pass the change set of
	// an applied operation and do not mutate it while violations update.
	// buf (usually a caller-stack array) backs the predicate list so the
	// per-step construction allocates nothing.
	cs := changeSet{facts: changed, preds: buf}
	for _, f := range changed {
		p := f.Pred()
		if !cs.hasPred(p) {
			cs.preds = append(cs.preds, p)
		}
	}
	return cs
}

func (cs changeSet) hasPred(p intern.Sym) bool {
	for _, q := range cs.preds {
		if q == p {
			return true
		}
	}
	return false
}

// UpdateViolations computes V(dNew, Σ) from before = V(dOld, Σ), where
// dNew is dOld with the facts `changed` inserted (insert = true) or
// deleted (insert = false). The facts in `changed` must actually have
// changed (as reported by ops.Op.Do). The input set is not modified.
func UpdateViolations(dNew *relation.Database, s *Set, before *Violations, changed []relation.Fact, insert bool) *Violations {
	out, _ := UpdateViolationsDiff(dNew, s, before, changed, insert)
	return out
}

// UpdateViolationsDiff is UpdateViolations extended to also report the
// eliminated violations (before − after), which the repair state tracks at
// every step. On the deletion-only fast path the eliminated set falls out
// of the filtering pass for free; only TGD recomputes pay a set
// difference.
func UpdateViolationsDiff(dNew *relation.Database, s *Set, before *Violations, changed []relation.Fact, insert bool) (*Violations, []Violation) {
	out, eliminated, _ := UpdateViolationsDelta(dNew, s, before, changed, insert)
	return out, eliminated
}

// UpdateViolationsDelta is UpdateViolationsDiff extended to also report the
// introduced violations (after − before), giving the full violation-set
// transition in one pass. The incremental partition maintenance of the abc
// package consumes both sides of the delta. Introduced violations are
// collected for free on the EGD/DC insertion path (a semi-naive hit whose
// body includes an inserted fact cannot have been a violation before); only
// TGD recomputes pay the set differences.
func UpdateViolationsDelta(dNew *relation.Database, s *Set, before *Violations, changed []relation.Fact, insert bool) (after *Violations, eliminated, introduced []Violation) {
	var predsBuf [4]intern.Sym
	cs := newChangeSet(changed, predsBuf[:0])

	out := &Violations{vs: make([]Violation, 0, before.Len()), sorted: true}
	needDiff := false
	for _, c := range s.constraints {
		switch {
		case !constraintTouches(c, cs):
			// Unaffected: copy this constraint's violations.
			copyConstraintViolations(out, before, c)

		case c.kind == TGD:
			// Full recompute for this constraint only; the eliminated and
			// introduced violations are recovered by set differences
			// afterwards.
			needDiff = true
			relation.ForEachHom(c.body, dNew, logic.NewSubst(), func(h logic.Subst) bool {
				if c.violatedBy(dNew, h) {
					out.add(NewViolation(c, h))
				}
				return true
			})

		case !insert:
			// EGD/DC + deletion: drop violations whose body lost a fact.
			// Survivors are copied as the bulk runs between eliminations —
			// the range is already ID-sorted, so the per-element sortedness
			// check of add is paid only once per eliminated violation.
			run := before.constraintRange(c)
			start := 0
			for i, v := range run {
				if bodyIntersects(v, cs) {
					out.appendRun(run[start:i])
					eliminated = append(eliminated, v)
					start = i + 1
				}
			}
			out.appendRun(run[start:])

		default:
			// EGD/DC + insertion: keep the old violations, merge in the
			// delta. The introductions are collected and stitched into the
			// copied run in ID order so the output stays sorted — appending
			// them after the run would force norm into a full re-sort of the
			// whole set on every insertion, the hot ingest path.
			var added []Violation
			forEachHomTouching(c.body, dNew, cs, func(h logic.Subst) {
				if c.violatedBy(dNew, h) {
					v := NewViolation(c, h)
					introduced = append(introduced, v)
					added = append(added, v)
				}
			})
			if len(added) == 0 {
				copyConstraintViolations(out, before, c)
				break
			}
			slices.SortFunc(added, func(a, b Violation) int {
				ai, bi := a.ID(), b.ID()
				switch {
				case ai < bi:
					return -1
				case ai > bi:
					return 1
				}
				return 0
			})
			run := before.constraintRange(c)
			start := 0
			for _, v := range added {
				id := v.ID()
				i := start
				for i < len(run) && run[i].ID() < id {
					i++
				}
				out.appendRun(run[start:i])
				start = i
				if i < len(run) && run[i].ID() == id {
					// Already present: keep the new copy alone, exactly as
					// norm's dedup would have.
					start = i + 1
				}
				out.add(v)
			}
			out.appendRun(run[start:])
		}
	}
	out.norm()
	if needDiff {
		eliminated = before.Minus(out)
		introduced = out.Minus(before)
	}
	return out, eliminated, introduced
}

// TouchedFacts returns the distinct facts implicated in a violation-set
// transition: the changed facts themselves plus every body fact of an
// eliminated or introduced violation, sorted. This is the exact set of
// facts whose conflict-component membership an update can alter — a
// component containing none of them keeps its fact set and violations
// verbatim — so it scopes the incremental re-partitioning of abc.Partition.
func TouchedFacts(changed []relation.Fact, eliminated, introduced []Violation) []relation.Fact {
	seen := map[relation.Fact]bool{}
	var out []relation.Fact
	add := func(f relation.Fact) {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	for _, f := range changed {
		add(f)
	}
	for _, v := range eliminated {
		for _, f := range v.BodyFacts() {
			add(f)
		}
	}
	for _, v := range introduced {
		for _, f := range v.BodyFacts() {
			add(f)
		}
	}
	relation.SortFacts(out)
	return out
}

// IntroducedViolations returns only the violations of dNew that were not
// violations before the update — the set after − before. It is the cheap
// side of UpdateViolations, used by the req2 admissibility check: a
// candidate operation is inadmissible iff it reintroduces an eliminated
// violation, and eliminated violations are disjoint from the current set,
// so only genuinely new violations matter. For EGD/DC deletions the answer
// is always empty without any search.
func IntroducedViolations(dNew *relation.Database, s *Set, before *Violations, changed []relation.Fact, insert bool) []Violation {
	var predsBuf [4]intern.Sym
	cs := newChangeSet(changed, predsBuf[:0])
	var out []Violation
	for _, c := range s.constraints {
		switch {
		case !constraintTouches(c, cs):
			// Unaffected constraints introduce nothing.

		case c.kind == TGD:
			relation.ForEachHom(c.body, dNew, logic.NewSubst(), func(h logic.Subst) bool {
				if c.violatedBy(dNew, h) {
					v := NewViolation(c, h)
					if !before.Has(v.ID()) {
						out = append(out, v)
					}
				}
				return true
			})

		case !insert:
			// EGD/DC deletions can only remove violations.

		default:
			forEachHomTouching(c.body, dNew, cs, func(h logic.Subst) {
				if c.violatedBy(dNew, h) {
					out = append(out, NewViolation(c, h))
				}
			})
		}
	}
	return out
}

// MayIntroduceViolations reports whether an update of the given polarity
// touching the given predicates can possibly create a new violation:
// insertions need a constraint body mentioning a touched predicate;
// deletions can only create TGD violations by destroying head witnesses.
// When this returns false, callers may skip computing the introduced set
// (and the database update itself) entirely. The per-set predicate caches
// make this a map probe per predicate.
func (s *Set) MayIntroduceViolations(preds []intern.Sym, insert bool) bool {
	for _, p := range preds {
		if insert {
			if s.bodyPreds[p] {
				return true
			}
		} else if s.tgdHeadPreds[p] {
			return true
		}
	}
	return false
}

// constraintTouches reports whether any body or head predicate of c is in
// the changed set.
func constraintTouches(c *Constraint, cs changeSet) bool {
	for _, a := range c.body {
		if cs.hasPred(a.Pred) {
			return true
		}
	}
	for _, a := range c.head {
		if cs.hasPred(a.Pred) {
			return true
		}
	}
	return false
}

func copyConstraintViolations(dst *Violations, src *Violations, c *Constraint) {
	dst.appendRun(src.constraintRange(c))
}

// bodyIntersects reports whether h(body) includes any changed fact.
func bodyIntersects(v Violation, cs changeSet) bool {
	for _, f := range cs.facts {
		if v.bodyHasFact(f) {
			return true
		}
	}
	return false
}

// forEachHomTouching enumerates the homomorphisms from atoms into d that
// map at least one atom onto a changed fact (the semi-naive delta): for
// each atom position in turn, the atom is pinned to each changed fact and
// the remaining atoms are matched against the full database — with the
// pivot's variables pre-bound, so the indexed search touches only matching
// buckets. Duplicate homomorphisms (touching several changed facts) are
// emitted once; the dedup key packs the bound symbols in canonical
// variable order. A single (pivot atom, changed fact) pair cannot produce
// duplicates, so the dedup machinery is skipped entirely in that common
// walk-step case.
func forEachHomTouching(atoms []logic.Atom, d *relation.Database, cs changeSet, fn func(logic.Subst)) {
	pairs := 0
	for _, a := range atoms {
		for _, f := range cs.facts {
			if f.Pred() == a.Pred {
				pairs++
			}
		}
	}
	if pairs == 0 {
		return
	}
	var vars []intern.Sym
	var seen map[string]bool
	if pairs > 1 {
		vars = logic.VarSymsOf(atoms)
		seen = map[string]bool{}
	}
	var packBuf [64]byte
	var valBuf [16]intern.Sym
	for i, pivot := range atoms {
		if !cs.hasPred(pivot.Pred) {
			continue
		}
		rest := make([]logic.Atom, 0, len(atoms)-1)
		rest = append(rest, atoms[:i]...)
		rest = append(rest, atoms[i+1:]...)
		// The changed facts are the pivots (they are all in d by
		// construction), so iterate them directly instead of scanning the
		// database's per-predicate list.
		for _, f := range cs.facts {
			if f.Pred() != pivot.Pred {
				continue
			}
			fargs := f.Args()
			if len(fargs) != len(pivot.Args) {
				continue
			}
			base := logic.NewSubst()
			ok := true
			for j, t := range pivot.Args {
				if t.IsConst() {
					if t.Sym() != fargs[j] {
						ok = false
						break
					}
					continue
				}
				if !base.Bind(t.Sym(), fargs[j]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			relation.ForEachHom(rest, d, base, func(h logic.Subst) bool {
				if seen == nil {
					fn(h)
					return true
				}
				vals := valBuf[:0]
				for _, v := range vars {
					vals = append(vals, h[v])
				}
				key := intern.PackSyms(packBuf[:0], vals)
				if !seen[string(key)] {
					seen[string(key)] = true
					fn(h)
				}
				return true
			})
		}
	}
}
