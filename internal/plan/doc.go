// Package plan is the relational-algebra layer of the unified substrate:
// named tables are views over the predicates of an interned
// relation.Database, plans are algebra expressions evaluated over interned
// symbol rows, and conjunctive plans compile to fo queries so they run on
// the indexed homomorphism search. It replaced the string-row engine the
// Section 5 practical scheme originally ran on: one data plane now serves
// the chain machinery and the approximation pipeline alike.
//
// # Key types
//
//   - Catalog: a *schema view* over a relation.Database. AddTable names
//     the columns of a predicate, DeclareKey marks key columns,
//     NewCatalogOn(db) lays views over a database the chain machinery
//     already holds (no conversion, no copy), and With(db) rebinds the
//     same schemas to another database in O(1) — how a plan is evaluated
//     against a per-round repair. DeriveKeys recognizes key-shaped EGDs
//     (R(x̄), R(ȳ) → xi = yi), which is how cmd/ocqa -mode practical maps
//     parsed constraints onto keyed tables.
//   - Plan: Scan / Select / Project / Join / Diff / Union / Distinct /
//     GroupCount. Exec(cat) evaluates; intermediate rows are []intern.Sym,
//     joins and distinct hash packed symbol tuples, and equality
//     conditions compile to single integer comparisons.
//   - AsQuery: compiles a conjunctive plan (Distinct over
//     Scan/natural-Join/equality-Select/Project; one variable per column
//     name) into an fo.Query, so natural-join semantics carry over to the
//     indexed search.
//   - RewriteScans: splices explicit R − R_del differences into a plan,
//     the shape experiment of Section 5 (E8).
//
// # Invariants
//
//   - A Catalog never owns facts; it interprets whatever Database it is
//     currently bound to, so rebinding is always O(1) and set semantics
//     come from the underlying fact set.
//   - AsQuery and direct algebra evaluation agree bit-identically on
//     shared repairs (property-tested) — consumers choose by performance,
//     not by semantics.
//
// # Neighbors
//
// Below: internal/relation, internal/intern, internal/fo, internal/logic.
// Above: internal/practical (per-round evaluation), internal/workload
// (Orders emits a Catalog), cmd/experiments (E8).
package plan
