// Localization demonstrates the Section 6 "localization of repairs"
// extension: for EGDs and denial constraints the conflict components of an
// inconsistent database repair independently, so the exact repair
// distribution factorizes. A database with 500 key conflicts — whose
// monolithic chain has more absorbing states than atoms in the universe —
// is answered *exactly* in milliseconds for atomic queries, and with the
// Theorem 9 additive guarantee for arbitrary first-order queries via exact
// factored repair draws.
//
// Run with: go run ./examples/localization
package main

import (
	"fmt"
	"log"
	"math/big"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/generators"
	"repro/internal/markov"
	"repro/internal/relation"
	"repro/internal/repair"
	"repro/internal/workload"
)

func main() {
	const conflicts = 500

	d, sigma := workload.KeyViolations(workload.KeyConfig{
		Keys: conflicts * 2, Violations: conflicts, Seed: 99,
	})
	inst, err := repair.NewInstance(d, sigma)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d facts, %d independent key conflicts\n", d.Size(), conflicts)
	fmt.Printf("monolithic chain: ~3^%d absorbing states — utterly infeasible\n\n", conflicts)

	// Trust levels: make one side of each conflict more credible.
	gen := generators.NewTrust(big.NewRat(1, 2))
	for i, f := range d.Facts() {
		if i%2 == 0 {
			if err := gen.Set(f, big.NewRat(4, 5)); err != nil {
				log.Fatal(err)
			}
		}
	}

	start := time.Now()
	fac, err := core.ComputeFactored(inst, gen, markov.ExploreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("factored semantics computed in %s:\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("  components: %d, untouched facts: %d\n", len(fac.Components), fac.Untouched.Size())
	fmt.Printf("  total distinct repairs: %s\n\n", fac.NumRepairs())

	// Exact per-fact marginals at full scale.
	var conflicted relation.Fact
	for _, c := range fac.Components {
		conflicted = c.Facts[0]
		break
	}
	clean := fac.Untouched.Facts()[0]
	fmt.Println("exact fact marginals (atomic queries, no sampling):")
	fmt.Printf("  P(%-16s ∈ repair) = %s (clean fact)\n", clean, fac.FactProbability(clean).RatString())
	fmt.Printf("  P(%-16s ∈ repair) = %s (conflicted fact)\n",
		conflicted, fac.FactProbability(conflicted).RatString())

	// Exact repair draws: sample three full repairs from the exact
	// distribution (each is a consistent database over all facts).
	fmt.Println("\nthree exact repair draws:")
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3; i++ {
		db := fac.SampleRepair(rng)
		fmt.Printf("  draw %d: %d facts, consistent: %v\n", i+1, db.Size(), sigma.Satisfied(db))
	}

	fmt.Println("\nthe preference generator of Example 4 is rejected here: its weights")
	fmt.Println("depend on the whole database, so factorization would be unsound —")
	fmt.Println("the LocalGenerator interface encodes that requirement in the types.")
}
