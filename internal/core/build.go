package core

import (
	"fmt"

	"repro/internal/abc"
	"repro/internal/constraint"
	"repro/internal/markov"
	"repro/internal/relation"
)

// This file is the island-grained build surface of the factored engine: a
// BuildScope fixes the exploration configuration of one build (a
// from-scratch ComputeFactored call or one resident-server publication),
// opens one structural-cache accounting window, and hands out per-island
// explorations that are safe to run from any number of goroutines.
// buildFactored drives it from a per-call worker pool; internal/serve
// drives it from resident sharded writers and reassembles the Factored
// with AssembleFactored + UpdateUntouched. Explorations are pure
// functions of the island's fact set, so the scheduling — which
// goroutine, which order, which shard — never leaks into the result.

// BuildScope groups the component explorations of one factored build.
// Create one per build with NewBuildScope, Explore each fresh island from
// any goroutine, then settle the deterministic cache accounting with
// Accounting over the results in island order.
type BuildScope struct {
	sigma      *constraint.Set
	g          LocalGenerator
	opt        markov.ExploreOptions
	structural bool
	cache      *SemanticsCache
	call       uint64
}

// NewBuildScope opens a build scope. opt is used as-is for every
// exploration — callers running several explorations concurrently should
// cap opt.Workers to 1, since the island-level parallelism already
// saturates the CPUs. The structural semantics cache engages exactly as
// in ComputeFactoredOpts: a structural generator, a constant-free Σ, and
// no FactoredOptions.NoCache.
func NewBuildScope(sigma *constraint.Set, g LocalGenerator, opt markov.ExploreOptions, fopt FactoredOptions) *BuildScope {
	sc := &BuildScope{sigma: sigma, g: g, opt: opt}
	if !fopt.NoCache {
		if sg, ok := g.(StructuralGenerator); ok && sg.StructuralWeights() && len(sigma.ConstSyms()) == 0 {
			sc.structural = true
			sc.cache = fopt.Cache
			if sc.cache == nil {
				sc.cache = NewSemanticsCache()
			}
			sc.call = sc.cache.begin()
		}
	}
	return sc
}

// Explored is one island's exploration result: the component plus the
// bookkeeping Accounting needs to split the scope's cache traffic.
type Explored struct {
	Comp  *Component
	key   string
	entry *cacheEntry
}

// Explore builds the Component of one conflict island: on the structural
// path the island is canonicalized and the shared canonical semantics is
// explored at most once per shape (concurrent isomorphic explorations
// coalesce on the cache entry); otherwise the island is explored
// directly, seeded with the violations it already carries. Safe for
// concurrent use by multiple goroutines of the same scope.
func (sc *BuildScope) Explore(isl *abc.Island) (Explored, error) {
	facts := isl.Facts
	c := &Component{Facts: facts}
	if sc.structural {
		canonFacts, key, inv, ren := canonicalize(facts)
		e := sc.cache.entry(key, sc.call)
		// The exploration runs on the canonical instance — a pure
		// function of the cache key — so every isomorphic component
		// observes the identical shared semantics regardless of which
		// one arrived first.
		e.once.Do(func() {
			e.sem, e.err = computeComponent(sc.sigma, sc.g, sc.opt, canonFacts, renameViolations(isl.Violations(), ren))
		})
		if e.err != nil {
			return Explored{}, fmt.Errorf("component %s: %w", relation.FactsString(facts), e.err)
		}
		c.canon = e.sem
		c.canonFacts, c.inv = canonFacts, inv
		return Explored{Comp: c, key: key, entry: e}, nil
	}
	sem, err := computeComponent(sc.sigma, sc.g, sc.opt, facts, constraint.ViolationsOf(isl.Violations()))
	if err != nil {
		return Explored{}, fmt.Errorf("component %s: %w", relation.FactsString(facts), err)
	}
	c.sem = sem
	return Explored{Comp: c}, nil
}

// Accounting returns the deterministic cache hit/miss split of the
// scope's explorations, listed in deterministic island order: the first
// exploration of each distinct shape is a miss if the shape entered the
// cache under this scope's window and a hit if an earlier build left it
// there; every repeat of a shape is a hit. The split is a pure function
// of the explored islands and the cache's pre-build contents, whatever
// the goroutine scheduling was. Zero under a non-structural scope.
func (sc *BuildScope) Accounting(explored []Explored) (hits, misses int) {
	if !sc.structural {
		return 0, 0
	}
	distinct := make(map[string]bool, len(explored))
	for _, e := range explored {
		if e.entry == nil {
			continue
		}
		if distinct[e.key] {
			hits++
			continue
		}
		distinct[e.key] = true
		if e.entry.call == sc.call {
			misses++
		} else {
			hits++
		}
	}
	return hits, misses
}

// UpdateUntouched derives the post-delta untouched core from the
// previous one in O(delta + touched region): the fact delta is applied,
// the facts of dissolved islands return when they are still present and
// conflict-free under the post-delta partition, and the facts the fresh
// islands claimed are evicted. db is the post-delta database and part
// its partition; removed and fresh are the island churn between the
// previous build's partition and part.
func UpdateUntouched(prev, db *relation.Database, part *abc.Partition, ops []FactDelta, removed, fresh []*abc.Island) *relation.Database {
	untouched := prev.Clone()
	for _, op := range ops {
		if op.Insert {
			untouched.Insert(op.Fact)
		} else {
			untouched.Delete(op.Fact)
		}
	}
	for _, isl := range removed {
		for _, f := range isl.Facts {
			if db.Contains(f) && part.IslandOf(f) == nil {
				untouched.Insert(f)
			}
		}
	}
	for _, isl := range fresh {
		for _, f := range isl.Facts {
			untouched.Delete(f)
		}
	}
	untouched.Compact(untouchedCompactLimit)
	return untouched
}

// AssembleFactored publishes a Factored from parts maintained by a
// resident builder (internal/serve's sharded writers): the post-delta
// database, the partition — every island of which must already carry its
// *Component payload — and the incrementally maintained untouched core.
// reused, hits, and misses are the caller's build accounting (islands
// carried verbatim, plus the Accounting split of the explored rest). The
// result is the same value buildFactored would publish for the same
// parts; it walks the partition once to align Components with Islands.
func AssembleFactored(db *relation.Database, sigma *constraint.Set, g LocalGenerator, part *abc.Partition, untouched *relation.Database, reused, hits, misses int) (*Factored, error) {
	islands := part.Islands()
	components := make([]*Component, len(islands))
	for i, isl := range islands {
		comp, ok := isl.Payload.(*Component)
		if !ok {
			return nil, fmt.Errorf("core: island %s has no component payload; explore every fresh island before assembling", relation.FactsString(isl.Facts))
		}
		components[i] = comp
	}
	return &Factored{
		initial:     db,
		sigma:       sigma,
		gen:         g,
		part:        part,
		Untouched:   untouched,
		Components:  components,
		Reused:      reused,
		CacheHits:   hits,
		CacheMisses: misses,
	}, nil
}
