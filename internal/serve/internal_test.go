package serve

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/generators"
	"repro/internal/relation"
	"repro/internal/workload"
)

// TestParseFact pins the accepted fact syntax: bare, "."-terminated, and
// whitespace-padded forms all parse to the same fact; multi-fact input and
// malformed text are rejected.
func TestParseFact(t *testing.T) {
	want := relation.NewFact("E", "a", "b")
	cases := []struct {
		in string
		ok bool
	}{
		{"E(a,b)", true},
		{"E(a, b)", true},
		{"E(a,b).", true},
		{"  E(a,b).  ", true},
		{"E(a,b)..", true},
		{"E(a,b). E(b,c).", false},
		{"E(a,b). E(b,c)", false},
		{"", false},
		{"E(a", false},
		{"E(a,b).x", false},
	}
	for _, c := range cases {
		f, err := parseFact(c.in)
		if c.ok {
			if err != nil {
				t.Errorf("parseFact(%q): %v", c.in, err)
			} else if f != want {
				t.Errorf("parseFact(%q) = %s, want %s", c.in, f, want)
			}
			continue
		}
		if err == nil {
			t.Errorf("parseFact(%q) accepted, want error", c.in)
		}
	}
}

// TestIngestCoalescing holds the first publication open with the apply
// hook while K single-op ingests queue behind it, then releases: the
// backlog must fold into exactly one further publication — every caller
// observing version 2 or later, MaxBatchOps recording the K-op batch — so
// N queued writers pay one recompute between them.
func TestIngestCoalescing(t *testing.T) {
	const queued = 8
	db, sigma := workload.Islands(workload.IslandsConfig{Islands: queued + 1, FactsPerIsland: 3, IsoRatio: 1, Seed: 3})
	gate := make(chan struct{})
	firstEntered := make(chan struct{})
	var once sync.Once
	testHookApply = func([]Op) {
		once.Do(func() {
			close(firstEntered)
			<-gate
		})
	}
	defer func() { testHookApply = nil }()

	s, err := New(db, sigma, generators.Uniform{}, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	edge := func(i int) relation.Fact {
		return relation.NewFact("E", fmt.Sprintf("i%08d_n000", i), fmt.Sprintf("i%08d_n001", i))
	}
	var wg sync.WaitGroup
	errc := make(chan error, queued+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Ingest([]Op{{Fact: edge(0)}}); err != nil {
			errc <- err
		}
	}()
	<-firstEntered
	// The coordinator is parked inside the first apply; everything sent now
	// lands in the queue behind it.
	for i := 1; i <= queued; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sn, err := s.Ingest([]Op{{Fact: edge(i)}})
			if err != nil {
				errc <- err
				return
			}
			if sn.Version() < 2 {
				errc <- fmt.Errorf("queued ingest %d published version %d, want ≥ 2", i, sn.Version())
			}
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for len(s.reqs) < queued {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d ingests queued", len(s.reqs), queued)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	st := s.Stats()
	if st.Version != 2 {
		t.Fatalf("published %d versions, want 2 (one for the held op, one for the coalesced backlog)", st.Version)
	}
	if st.LastBatchOps != queued || st.MaxBatchOps != queued {
		t.Fatalf("batch stats last=%d max=%d, want %d/%d", st.LastBatchOps, st.MaxBatchOps, queued, queued)
	}
	if st.CumOps != queued+1 {
		t.Fatalf("CumOps = %d, want %d", st.CumOps, queued+1)
	}
}

type failingWriter struct {
	h http.Header
}

func (w *failingWriter) Header() http.Header       { return w.h }
func (w *failingWriter) WriteHeader(int)           {}
func (w *failingWriter) Write([]byte) (int, error) { return 0, errors.New("client gone") }

// TestWriteJSONReportsEncodeError: a mid-stream encode failure must reach
// the log, not vanish into a silently truncated 200.
func TestWriteJSONReportsEncodeError(t *testing.T) {
	var mu sync.Mutex
	var got string
	old := logf
	logf = func(format string, args ...any) {
		mu.Lock()
		got = fmt.Sprintf(format, args...)
		mu.Unlock()
	}
	defer func() { logf = old }()
	writeJSON(&failingWriter{h: http.Header{}}, http.StatusOK, map[string]int{"x": 1})
	mu.Lock()
	defer mu.Unlock()
	if !strings.Contains(got, "client gone") {
		t.Fatalf("encode error not logged; log captured %q", got)
	}
}
