package plan

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/constraint"
	"repro/internal/intern"
	"repro/internal/relation"
)

// Table is the schema of one named table: a predicate of the backing
// database together with column names. Facts of the predicate whose arity
// differs from the declared column count are ignored by Scan.
type Table struct {
	Name string
	Pred intern.Sym
	Cols []string
}

// ColIndex returns the index of a column.
func (t *Table) ColIndex(col string) (int, error) {
	for i, c := range t.Cols {
		if c == col {
			return i, nil
		}
	}
	return 0, fmt.Errorf("plan: table %s has no column %q", t.Name, col)
}

// Catalog maps table names to schemas over a backing relation.Database and
// records declared keys (column-index lists) for the practical repair
// scheme. The schema part is immutable once built; With swaps the backing
// database in O(1), which is how per-round repairs R − R_del are evaluated
// without rebuilding any relation.
type Catalog struct {
	tables map[string]*Table
	keys   map[string][]int
	db     *relation.Database
}

// NewCatalog returns an empty catalog over a fresh database.
func NewCatalog() *Catalog { return NewCatalogOn(relation.NewDatabase()) }

// NewCatalogOn returns a catalog over an existing database, so table views
// can be declared directly over the facts the chain machinery already
// holds — no copy, same substrate.
func NewCatalogOn(db *relation.Database) *Catalog {
	return &Catalog{tables: map[string]*Table{}, keys: map[string][]int{}, db: db}
}

// DB returns the backing database.
func (c *Catalog) DB() *relation.Database { return c.db }

// With returns a shallow view of the catalog over a different backing
// database: schemas and keys are shared, only the fact source changes.
func (c *Catalog) With(db *relation.Database) *Catalog {
	return &Catalog{tables: c.tables, keys: c.keys, db: db}
}

// Seal folds the backing database's delta into an indexed snapshot (see
// relation.Database.Seal); the caller must be the only writer.
func (c *Catalog) Seal() { c.db.Seal() }

// AddTable declares a table schema.
func (c *Catalog) AddTable(name string, cols ...string) error {
	if name == "" {
		return fmt.Errorf("plan: table name must be non-empty")
	}
	if _, ok := c.tables[name]; ok {
		return fmt.Errorf("plan: table %q already declared", name)
	}
	seen := map[string]bool{}
	for _, col := range cols {
		if seen[col] {
			return fmt.Errorf("plan: table %q declares column %q twice", name, col)
		}
		seen[col] = true
	}
	c.tables[name] = &Table{Name: name, Pred: intern.S(name), Cols: cols}
	return nil
}

// MustAddTable is AddTable that panics on error; chainable.
func (c *Catalog) MustAddTable(name string, cols ...string) *Catalog {
	if err := c.AddTable(name, cols...); err != nil {
		panic(err)
	}
	return c
}

// Table looks a schema up.
func (c *Catalog) Table(name string) (*Table, error) {
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("plan: unknown table %q", name)
	}
	return t, nil
}

// Tables returns the declared table names, sorted.
func (c *Catalog) Tables() []string {
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Insert adds a row to a table as an interned fact of the backing database;
// it reports whether the fact was new (databases are sets, so re-inserting
// an identical row is a no-op).
func (c *Catalog) Insert(table string, vals ...string) (bool, error) {
	t, err := c.Table(table)
	if err != nil {
		return false, err
	}
	if len(vals) != len(t.Cols) {
		return false, fmt.Errorf("plan: row width %d does not match %d columns of %s", len(vals), len(t.Cols), table)
	}
	return c.db.Insert(relation.NewFact(table, vals...)), nil
}

// MustInsert is Insert that panics on error; chainable.
func (c *Catalog) MustInsert(table string, vals ...string) *Catalog {
	if _, err := c.Insert(table, vals...); err != nil {
		panic(err)
	}
	return c
}

// Count reports the number of rows of a table (0 for unknown tables).
func (c *Catalog) Count(table string) int {
	t, ok := c.tables[table]
	if !ok {
		return 0
	}
	n := 0
	c.db.ForEachPredFact(t.Pred, func(f relation.Fact) bool {
		if f.Arity() == len(t.Cols) {
			n++
		}
		return true
	})
	return n
}

// Facts returns the facts backing a table (nil for unknown tables). The
// returned slice must not be modified.
func (c *Catalog) Facts(table string) []relation.Fact {
	t, ok := c.tables[table]
	if !ok {
		return nil
	}
	return c.db.FactsByPred(t.Pred)
}

// DeclareKey records that the given columns form a key of the table.
func (c *Catalog) DeclareKey(table string, cols ...string) error {
	t, err := c.Table(table)
	if err != nil {
		return err
	}
	if len(cols) == 0 {
		return fmt.Errorf("plan: key of %s must name at least one column", table)
	}
	idx := make([]int, len(cols))
	for i, col := range cols {
		j, err := t.ColIndex(col)
		if err != nil {
			return err
		}
		idx[i] = j
	}
	c.keys[table] = idx
	return nil
}

// Key returns the key column indexes of a table (nil when none declared).
func (c *Catalog) Key(table string) []int { return c.keys[table] }

// KeyedTables returns the names of tables with a declared key, sorted.
func (c *Catalog) KeyedTables() []string {
	var out []string
	for t := range c.keys {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// DeriveKeys scans a constraint set for key-shaped EGDs — two atoms of the
// same predicate sharing variables at some positions, cross-equating a
// pair of variables at a non-shared position — and declares the shared
// positions as that table's key, but only when the predicate's EGDs
// together equate EVERY non-shared position: a lone EGD R(x,y,u), R(x,z,w)
// → y = z is the functional dependency x → y, not a key, and treating it
// as one would make the practical scheme repair a distribution unrelated
// to the constraints (wide tables need one EGD per non-key position).
// Tables not yet in the catalog are added with generated column names
// a1..aN. It returns the sorted names of the tables whose keys were
// derived plus the number of constraints that did not contribute to a
// derived key, so a caller can report what the practical scheme will and
// will not repair.
func (c *Catalog) DeriveKeys(sigma *constraint.Set) ([]string, int) {
	type predKey struct {
		shared  []int
		equated map[int]bool
		arity   int
		egds    int
	}
	byPred := map[string]*predKey{}
	unrecognized := 0
	for _, con := range sigma.All() {
		name, pos, eq, arity, ok := keyShape(con)
		if !ok {
			unrecognized++
			continue
		}
		pk := byPred[name]
		if pk == nil {
			pk = &predKey{shared: pos, equated: map[int]bool{}, arity: arity}
			byPred[name] = pk
		} else {
			pk.shared = intersect(pk.shared, pos)
		}
		for _, p := range eq {
			pk.equated[p] = true
		}
		pk.egds++
	}
	var out []string
	for name, pk := range byPred {
		covered := len(pk.shared) > 0
		for p := 0; p < pk.arity && covered; p++ {
			if !slices.Contains(pk.shared, p) && !pk.equated[p] {
				covered = false
			}
		}
		if !covered {
			unrecognized += pk.egds
			continue
		}
		t, ok := c.tables[name]
		if !ok {
			cols := make([]string, pk.arity)
			for i := range cols {
				cols[i] = fmt.Sprintf("a%d", i+1)
			}
			if err := c.AddTable(name, cols...); err != nil {
				unrecognized += pk.egds
				continue
			}
			t = c.tables[name]
		}
		valid := true
		for _, p := range pk.shared {
			if p >= len(t.Cols) {
				valid = false
				break
			}
		}
		if !valid {
			unrecognized += pk.egds
			continue
		}
		c.keys[name] = pk.shared
		out = append(out, name)
	}
	sort.Strings(out)
	return out, unrecognized
}

// keyShape recognizes one key-component EGD R(x̄), R(ȳ) → xi = yi: the two
// atoms share variables at the candidate key positions, and the equated
// pair is the cross-atom variable pair at one or more of the remaining
// positions. It returns the predicate name, the shared (key) positions,
// the positions the equality covers, and the atom arity. EGDs equating
// anything else (e.g. R(X,Y), R(X,Z) → X = Y, a legal EGD but not a key
// component) are rejected; DeriveKeys additionally requires the
// predicate's EGDs to cover every non-shared position.
func keyShape(con *constraint.Constraint) (string, []int, []int, int, bool) {
	if con.Kind() != constraint.EGD {
		return "", nil, nil, 0, false
	}
	body := con.Body()
	if len(body) != 2 {
		return "", nil, nil, 0, false
	}
	a, b := body[0], body[1]
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return "", nil, nil, 0, false
	}
	l, r := con.Equality()
	if !l.IsVar() || !r.IsVar() {
		return "", nil, nil, 0, false
	}
	var pos, eq []int
	for i := range a.Args {
		ta, tb := a.Args[i], b.Args[i]
		if !ta.IsVar() || !tb.IsVar() {
			return "", nil, nil, 0, false
		}
		if ta.Sym() == tb.Sym() {
			pos = append(pos, i)
			continue
		}
		if (ta.Sym() == l.Sym() && tb.Sym() == r.Sym()) ||
			(ta.Sym() == r.Sym() && tb.Sym() == l.Sym()) {
			eq = append(eq, i)
		}
	}
	if len(pos) == 0 || len(pos) == len(a.Args) || len(eq) == 0 {
		return "", nil, nil, 0, false
	}
	return intern.Name(a.Pred), pos, eq, len(a.Args), true
}

func intersect(a, b []int) []int {
	in := map[int]bool{}
	for _, x := range a {
		in[x] = true
	}
	var out []int
	for _, x := range b {
		if in[x] {
			out = append(out, x)
		}
	}
	return out
}
