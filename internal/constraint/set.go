package constraint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/logic"
	"repro/internal/relation"
)

// Set is an ordered collection of constraints with stable identifiers.
// Identifiers ("c0", "c1", ...) name constraints inside violation keys, so
// a Set must not be mutated once violations derived from it are in flight.
type Set struct {
	constraints []*Constraint
	byID        map[string]*Constraint
}

// NewSet builds a set from the given constraints, assigning sequential IDs
// to those that do not have one. Constraints are shared, not copied; a
// constraint may belong to only one set.
func NewSet(cs ...*Constraint) *Set {
	s := &Set{byID: map[string]*Constraint{}}
	for _, c := range cs {
		s.Add(c)
	}
	return s
}

// Add appends a constraint, assigning it an ID if needed.
func (s *Set) Add(c *Constraint) {
	if c.id == "" {
		c.id = fmt.Sprintf("c%d", len(s.constraints))
	}
	if _, dup := s.byID[c.id]; dup {
		panic(fmt.Sprintf("constraint: duplicate id %q in set", c.id))
	}
	s.constraints = append(s.constraints, c)
	s.byID[c.id] = c
}

// Len reports the number of constraints.
func (s *Set) Len() int { return len(s.constraints) }

// All returns the constraints in insertion order; the slice must not be
// modified.
func (s *Set) All() []*Constraint { return s.constraints }

// ByID looks a constraint up by identifier.
func (s *Set) ByID(id string) (*Constraint, bool) {
	c, ok := s.byID[id]
	return c, ok
}

// Satisfied reports whether D |= Σ.
func (s *Set) Satisfied(d *relation.Database) bool {
	for _, c := range s.constraints {
		if !c.Satisfied(d) {
			return false
		}
	}
	return true
}

// Schema collects the predicates mentioned by the constraints into schema,
// checking arity consistency.
func (s *Set) Schema(schema *relation.Schema) error {
	for _, c := range s.constraints {
		for _, a := range c.body {
			if err := schema.Add(a.Pred, a.Arity()); err != nil {
				return err
			}
		}
		for _, a := range c.head {
			if err := schema.Add(a.Pred, a.Arity()); err != nil {
				return err
			}
		}
	}
	return nil
}

// Consts returns the distinct constants mentioned anywhere in the set.
func (s *Set) Consts() []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range s.constraints {
		for _, t := range c.Consts() {
			if !seen[t.Name()] {
				seen[t.Name()] = true
				out = append(out, t.Name())
			}
		}
	}
	return out
}

// Base constructs B(D,Σ): the base whose schema covers both the database
// and the constraints and whose constants are dom(D) plus the constants of
// the constraints.
func (s *Set) Base(d *relation.Database) (*relation.Base, error) {
	schema := relation.NewSchema()
	if err := schema.AddDatabase(d); err != nil {
		return nil, err
	}
	if err := s.Schema(schema); err != nil {
		return nil, err
	}
	consts := d.Dom()
	consts = append(consts, s.Consts()...)
	return relation.NewBase(schema, consts), nil
}

// String renders the set one constraint per line, each terminated by a dot.
func (s *Set) String() string {
	var b strings.Builder
	for _, c := range s.constraints {
		b.WriteString(c.String())
		b.WriteString(".\n")
	}
	return b.String()
}

// Violation is a pair (κ, h): constraint κ is violated in a database via
// the body homomorphism h (Definition 2). h binds exactly the universal
// variables of κ. Construct violations with NewViolation so the cached
// identity and body-fact encodings are populated; they sit on the hot path
// of incremental violation maintenance.
type Violation struct {
	Constraint *Constraint
	H          logic.Subst

	key       string
	bodyKey   string
	bodyFacts []relation.Fact
	bodyKeys  map[string]bool
}

// NewViolation builds a violation and precomputes its identity and body
// image. The substitution is cloned.
func NewViolation(c *Constraint, h logic.Subst) Violation {
	v := Violation{Constraint: c, H: h.Clone()}
	v.key = c.id + "|" + v.H.Key()
	seen := map[string]bool{}
	for _, a := range v.H.ApplyAtoms(c.body) {
		f := relation.MustFactFromAtom(a)
		if k := f.Key(); !seen[k] {
			seen[k] = true
			v.bodyFacts = append(v.bodyFacts, f)
		}
	}
	relation.SortFacts(v.bodyFacts)
	v.bodyKeys = seen
	var b strings.Builder
	for i, f := range v.bodyFacts {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(f.Key())
	}
	v.bodyKey = b.String()
	return v
}

// BodyKey returns the canonical encoding of h(ϕ) as a fact set; violations
// with equal body images (e.g. the two orientations of an EGD match) share
// it, and the justified deletions of a violation are a function of it.
func (v Violation) BodyKey() string { return v.bodyKey }

// Key returns the canonical identity of the violation, stable across
// database states: the constraint ID together with the encoded assignment.
func (v Violation) Key() string {
	if v.key != "" {
		return v.key
	}
	return v.Constraint.id + "|" + v.H.Key()
}

// BodyFacts returns h(ϕ): the (distinct) facts of the body image under h.
// For a violation of D, these facts all belong to D. The slice is shared;
// callers must not modify it.
func (v Violation) BodyFacts() []relation.Fact {
	if v.bodyFacts != nil || len(v.Constraint.body) == 0 {
		return v.bodyFacts
	}
	return NewViolation(v.Constraint, v.H).bodyFacts
}

// bodyHasKey reports whether h(ϕ) contains a fact with the given key.
func (v Violation) bodyHasKey(k string) bool {
	if v.bodyKeys != nil {
		return v.bodyKeys[k]
	}
	for _, f := range v.BodyFacts() {
		if f.Key() == k {
			return true
		}
	}
	return false
}

// String renders the violation as (id: constraint, {x -> a, ...}).
func (v Violation) String() string {
	return fmt.Sprintf("(%s: %s, %s)", v.Constraint.id, v.Constraint, v.H)
}

// Violations is the set V(D,Σ) for some database D, keyed by Violation.Key.
type Violations struct {
	byKey map[string]Violation
}

// NewViolations returns an empty violation set.
func NewViolations() *Violations { return &Violations{byKey: map[string]Violation{}} }

// FindViolations computes V(D,Σ).
func FindViolations(d *relation.Database, s *Set) *Violations {
	vs := NewViolations()
	for _, c := range s.constraints {
		relation.ForEachHom(c.body, d, logic.NewSubst(), func(h logic.Subst) bool {
			if c.violatedBy(d, h) {
				vs.add(NewViolation(c, h))
			}
			return true
		})
	}
	return vs
}

func (vs *Violations) add(v Violation) { vs.byKey[v.Key()] = v }

// Len reports the number of violations.
func (vs *Violations) Len() int { return len(vs.byKey) }

// Empty reports whether there are no violations, i.e. D |= Σ.
func (vs *Violations) Empty() bool { return len(vs.byKey) == 0 }

// Has reports whether the violation with the given key is present.
func (vs *Violations) Has(key string) bool {
	_, ok := vs.byKey[key]
	return ok
}

// Get returns the violation with the given key.
func (vs *Violations) Get(key string) (Violation, bool) {
	v, ok := vs.byKey[key]
	return v, ok
}

// All returns the violations in deterministic (key-sorted) order.
func (vs *Violations) All() []Violation {
	keys := make([]string, 0, len(vs.byKey))
	for k := range vs.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Violation, len(keys))
	for i, k := range keys {
		out[i] = vs.byKey[k]
	}
	return out
}

// Keys returns the sorted violation keys.
func (vs *Violations) Keys() []string {
	keys := make([]string, 0, len(vs.byKey))
	for k := range vs.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Minus returns the violations of vs whose keys are not in other:
// V(D,Σ) − V(D',Σ).
func (vs *Violations) Minus(other *Violations) []Violation {
	var out []Violation
	for k, v := range vs.byKey {
		if !other.Has(k) {
			out = append(out, v)
		}
	}
	return out
}

// InvolvedFacts returns the union of h(ϕ) over all violations: the facts of
// the database that participate in at least one violation. This is the set
// V_Σ(D) of atoms used by the preference generator of Example 4 and the
// localization optimization of Section 6.
func (vs *Violations) InvolvedFacts() []relation.Fact {
	seen := map[string]bool{}
	var out []relation.Fact
	for _, v := range vs.byKey {
		for _, f := range v.BodyFacts() {
			if k := f.Key(); !seen[k] {
				seen[k] = true
				out = append(out, f)
			}
		}
	}
	relation.SortFacts(out)
	return out
}
