// Package prob provides the probability utilities shared across the
// stack: exact rational arithmetic helpers, weighted random choice, the
// Hoeffding sample-size bound, and the deterministic RNG-seeding scheme
// the parallel pipelines are built on.
//
// # Key pieces
//
//   - big.Rat helpers (Zero/One/Sum/Normalize/IsOne/Format/...): all chain
//     probability arithmetic stays exact; floats are for reporting only.
//   - Rat (rat.go): the small-rational accumulator behind the exact
//     engines' hot loops. Values live in an int64/int64 fraction until an
//     operation's exact result would overflow, then promote — once,
//     permanently, and without rounding — to an internal big.Rat. The
//     promotion contract: a Rat always holds the exact rational, so
//     Big() materializes the same canonical *big.Rat whichever
//     representation the value took; callers can mix fast-path and
//     promoted values freely and still compare bit-identical at the API
//     boundary.
//   - HoeffdingSamples: n = ⌈ln(2/δ)/(2ε²)⌉, the sample size behind the
//     Theorem 9 approximation scheme (ε = δ = 0.1 gives the paper's 150).
//   - Pick / PickInt / PickBigInt: weighted index choice consuming exactly
//     one RNG draw each. The three are draw-for-draw consistent — for the
//     same RNG state and proportional weights they return the same index —
//     so integer- and big.Int-weight fast paths sample walks bit-identical
//     to the exact rational path.
//   - SplitMix (splitmix.go): a rand.Source64 with O(1) seeding.
//     ReseedAt(seed, i) aims an owned rand.Rand at unit i's stream as a
//     pure function of (seed, i) — the mechanism behind "bit-identical for
//     every worker count" in sampling.Estimator, practical.Runner, and the
//     uniform-sequence sampler.
//
// # Invariants
//
//   - Pick-family draws use a 53-bit uniform and compare against exact
//     cumulative products (big-integer or 128-bit), so the choice is never
//     subject to floating-point rounding.
//   - SplitMix reseeding mid-stream is sound only because the pipelines
//     draw through Int63n/Intn/Float64, which rand.Rand does not buffer.
//
// # Neighbors
//
// Everything probabilistic sits above: internal/markov (exact hitting
// distributions), internal/sampling, internal/practical,
// internal/generators.
package prob
